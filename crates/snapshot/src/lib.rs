//! # restore-snapshot
//!
//! Golden checkpoint library: full machine snapshots of a fault-free run
//! captured at stride boundaries, with fingerprint-verified restore.
//!
//! ReStore's own detection mechanism is checkpoint/rollback (§2.1), and
//! the reproduction's campaigns have the mirror-image need: every
//! injection point wants the golden machine *at* its sweep coordinate,
//! and walking one machine serially through all points makes point
//! production the Amdahl bottleneck. This crate records clones of the
//! golden machine every `stride` coordinates — cheap, because the
//! architectural [`restore_arch::Memory`] is copy-on-write, so a
//! snapshot costs one page table plus `Arc` bumps, not an image copy —
//! and materializes the machine nearest at-or-before any requested
//! coordinate. A consumer finishes the residual sweep (< `stride`
//! coordinates), so per-point setup cost is O(stride), independent of
//! how deep into the run the point lies.
//!
//! Restore is *proved*, not assumed: every snapshot records the
//! machine's full-state fingerprint at capture, every materialization
//! `debug_assert`s that the clone reproduces it bit-for-bit, and the
//! campaign equivalence tests (`crates/inject/tests/ckpt_equivalence.rs`)
//! show trial vectors bit-identical with the library on or off.
//!
//! Libraries are memoized process-wide by [`LibraryKey`] — (seeding
//! domain, workload, config digest, stride) — so repeated campaigns
//! over the same workload start from warm checkpoints instead of
//! re-simulating the golden prefix.
//!
//! # Examples
//!
//! ```
//! use restore_arch::Cpu;
//! use restore_snapshot::{GoldenCheckpointLibrary, SnapshotMachine};
//! use restore_workloads::{Scale, WorkloadId};
//!
//! let program = WorkloadId::Mcfx.build(Scale::smoke());
//! let mut lib = GoldenCheckpointLibrary::new(Cpu::new(&program), 500);
//! let m = lib.materialize(1_234).expect("mcfx runs past 1234 instructions");
//! assert!(m.base_coord <= 1_234 && 1_234 - m.base_coord < 500);
//! let mut cpu = m.machine;
//! assert!(cpu.step_to(1_234));
//! assert_eq!(cpu.retired(), 1_234);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use parking_lot::Mutex;
use restore_arch::state::{FieldClass, StateHasher, StateKind, StateVisitor};
use restore_arch::Cpu;
use restore_uarch::{Pipeline, Stop};
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A machine whose golden run can be checkpointed: it advances along a
/// monotone sweep coordinate (pipeline cycles, retired instructions),
/// clones into an independent replica, and digests its complete state
/// into a fingerprint.
///
/// The library's correctness argument leans on two contracts:
///
/// * **determinism** — two clones at the same coordinate evolve
///   identically, so a materialized machine is indistinguishable from a
///   serially swept one;
/// * **fingerprint completeness** — equal fingerprints mean equal full
///   machine state (the same property the campaigns' reconvergence
///   cutoff relies on).
pub trait SnapshotMachine: Clone {
    /// Current sweep coordinate (monotone non-decreasing under
    /// [`SnapshotMachine::step_to`]).
    fn coord(&self) -> u64;

    /// Advances to `coord`, stopping early if the machine halts.
    /// Returns `true` iff the machine is still live *at* `coord` —
    /// exactly the historical campaign sweepers' emission condition.
    fn step_to(&mut self, coord: u64) -> bool;

    /// Full-machine state digest (`&mut` only to refresh internal
    /// digest caches; the architectural state is untouched).
    fn fingerprint(&mut self) -> u64;
}

impl SnapshotMachine for Cpu {
    fn coord(&self) -> u64 {
        self.retired()
    }

    fn step_to(&mut self, coord: u64) -> bool {
        while self.retired() < coord && !self.is_halted() {
            self.step().expect("golden machines never fault");
        }
        !self.is_halted()
    }

    fn fingerprint(&mut self) -> u64 {
        Cpu::fingerprint(self)
    }
}

impl SnapshotMachine for Pipeline {
    fn coord(&self) -> u64 {
        self.cycles()
    }

    fn step_to(&mut self, coord: u64) -> bool {
        while self.cycles() < coord && self.status() == Stop::Running {
            self.cycle();
        }
        self.status() == Stop::Running
    }

    fn fingerprint(&mut self) -> u64 {
        Pipeline::fingerprint(self)
    }
}

/// Bookkeeping carried by one captured snapshot. The capture/restore
/// proof obligation lives here: `fingerprint` is recorded at capture
/// and every materialization must reproduce it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Sweep coordinate the snapshot was captured at.
    pub coord: u64,
    /// Full-machine fingerprint recorded at capture.
    pub fingerprint: u64,
    /// Materializations served from this snapshot so far.
    // audit: skip -- usage counter for stats reporting, not captured
    // machine state; restoring it would claim another run's history
    pub serves: u64,
}

impl SnapshotMeta {
    /// Walks the capture-proof fields through a [`StateVisitor`], so
    /// [`GoldenCheckpointLibrary::digest`] can fold a whole library into
    /// one value (shards of a resumable campaign cross-check that they
    /// materialize from identical libraries).
    pub fn visit<V: StateVisitor>(&mut self, v: &mut V) {
        v.region("snapshot-meta", StateKind::Ram);
        v.word(&mut self.coord, 64, FieldClass::Data);
        v.word(&mut self.fingerprint, 64, FieldClass::Data);
    }
}

/// One captured snapshot: the machine clone plus its proof metadata.
#[derive(Debug, Clone)]
struct Snapshot<M> {
    meta: SnapshotMeta,
    machine: M,
}

/// A machine materialized from the library, positioned at the nearest
/// snapshot at-or-before the requested coordinate. The consumer owes
/// the residual `step_to(requested)` — at most one stride of work.
#[derive(Debug)]
pub struct Materialized<M> {
    /// The restored machine, at `base_coord`.
    pub machine: M,
    /// Coordinate of the snapshot the machine was cloned from.
    pub base_coord: u64,
    /// Fingerprint recorded when that snapshot was captured, for
    /// release-mode restore verification by callers that want it.
    pub base_fingerprint: u64,
    /// Index of the serving snapshot in capture order; comparing against
    /// [`GoldenCheckpointLibrary::len`] taken earlier distinguishes warm
    /// (pre-existing) from cold (freshly captured) serves.
    pub snap_index: usize,
}

/// Strided full-machine snapshots of one golden run.
///
/// The library owns a *frontier* machine that sweeps forward on demand,
/// capturing a snapshot (clone + fingerprint) at every multiple of
/// `stride` it crosses. [`GoldenCheckpointLibrary::materialize`] then
/// serves any coordinate the golden run reaches alive, from the nearest
/// snapshot at-or-before it. Requests may arrive in any order; the
/// frontier only ever moves forward, so a full campaign costs one
/// golden sweep to its furthest point — once per process per
/// [`LibraryKey`], not once per campaign.
#[derive(Debug)]
pub struct GoldenCheckpointLibrary<M> {
    stride: u64,
    origin_coord: u64,
    snaps: Vec<Snapshot<M>>,
    frontier: M,
    /// Coordinate where the golden run stopped being live, once known.
    /// Coordinates at or past it are unreachable (`materialize` returns
    /// `None`, matching the serial sweepers' abandonment semantics).
    stop: Option<u64>,
}

impl<M: SnapshotMachine> GoldenCheckpointLibrary<M> {
    /// Builds a library over `origin` (the machine at its spawn state),
    /// capturing future snapshots every `stride` coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero — a zero stride means "no library";
    /// callers gate on it before constructing one.
    pub fn new(mut origin: M, stride: u64) -> GoldenCheckpointLibrary<M> {
        assert!(stride > 0, "checkpoint stride must be positive");
        let origin_coord = origin.coord();
        let meta =
            SnapshotMeta { coord: origin_coord, fingerprint: origin.fingerprint(), serves: 0 };
        let snaps = vec![Snapshot { meta, machine: origin.clone() }];
        GoldenCheckpointLibrary { stride, origin_coord, snaps, frontier: origin, stop: None }
    }

    /// The capture stride.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The origin machine's coordinate (usually 0).
    pub fn origin_coord(&self) -> u64 {
        self.origin_coord
    }

    /// The origin machine — the spawn-state snapshot. Campaign planners
    /// read run metadata from here instead of spawning a fresh machine.
    pub fn origin(&self) -> &M {
        &self.snaps[0].machine
    }

    /// Snapshots captured so far (the origin counts).
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// Never true: the origin snapshot always exists.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// Where the golden run stopped, if the frontier has discovered it.
    pub fn stop_coord(&self) -> Option<u64> {
        self.stop
    }

    /// Per-snapshot metadata in capture order (coordinates ascending).
    pub fn metas(&self) -> impl Iterator<Item = &SnapshotMeta> {
        self.snaps.iter().map(|s| &s.meta)
    }

    /// Order-sensitive digest of every snapshot's (coordinate,
    /// fingerprint) pair: two libraries digest equal iff they captured
    /// the same golden states at the same coordinates.
    pub fn digest(&mut self) -> u64 {
        let mut h = StateHasher::new();
        for s in &mut self.snaps {
            s.meta.visit(&mut h);
        }
        h.finish()
    }

    /// Advances the frontier to `coord`, capturing a snapshot at every
    /// stride boundary crossed, and records the stop coordinate if the
    /// machine halts on the way.
    fn ensure(&mut self, coord: u64) {
        while self.stop.is_none() && self.frontier.coord() < coord {
            let boundary = (self.frontier.coord() / self.stride + 1) * self.stride;
            let target = boundary.min(coord);
            if !self.frontier.step_to(target) {
                self.stop = Some(self.frontier.coord());
                return;
            }
            if self.frontier.coord() == boundary {
                let meta = SnapshotMeta {
                    coord: boundary,
                    fingerprint: self.frontier.fingerprint(),
                    serves: 0,
                };
                self.snaps.push(Snapshot { meta, machine: self.frontier.clone() });
            }
        }
    }

    /// Clones the machine nearest at-or-before `coord`, extending the
    /// frontier first if needed. `None` iff the golden run is not live
    /// at `coord` — the exact condition under which the historical
    /// serial sweepers stopped emitting points.
    ///
    /// Every materialization re-verifies the restore in debug builds:
    /// the clone's fingerprint must equal the one recorded at capture.
    ///
    /// # Panics
    ///
    /// Panics if `coord` precedes the origin coordinate — such a point
    /// was never reachable by sweeping and indicates a planner bug.
    pub fn materialize(&mut self, coord: u64) -> Option<Materialized<M>> {
        assert!(coord >= self.origin_coord, "coordinate precedes the library origin");
        self.ensure(coord);
        if self.stop.is_some_and(|s| coord >= s) {
            return None;
        }
        let idx = self.snaps.partition_point(|s| s.meta.coord <= coord) - 1;
        let snap = &mut self.snaps[idx];
        snap.meta.serves += 1;
        let machine = snap.machine.clone();
        if cfg!(debug_assertions) {
            let mut probe = machine.clone();
            assert_eq!(
                probe.fingerprint(),
                snap.meta.fingerprint,
                "restored snapshot at coord {} does not reproduce its capture fingerprint",
                snap.meta.coord
            );
        }
        Some(Materialized {
            machine,
            base_coord: snap.meta.coord,
            base_fingerprint: snap.meta.fingerprint,
            snap_index: idx,
        })
    }
}

/// Process-wide identity of one golden run's library: seeding domain,
/// workload index, a digest of everything that shapes the machine's
/// evolution (program scale, machine configuration — *not* campaign
/// seeds or thread counts, which never touch the golden run), and the
/// capture stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LibraryKey {
    /// Campaign seeding domain (decorrelates the µarch and arch suites).
    pub domain: u64,
    /// Workload index within the suite.
    pub workload: u64,
    /// Digest of the machine-shaping configuration
    /// (`restore_core::config_digest` — shared with the trial store so
    /// both caches agree on configuration identity).
    pub config: u64,
    /// Capture stride; different strides are different libraries.
    pub stride: u64,
}

// determinism: allow -- keyed lookup only; the cache is never iterated for output
type CacheMap = HashMap<LibraryKey, Arc<dyn Any + Send + Sync>>;

fn cache() -> &'static Mutex<CacheMap> {
    static CACHE: OnceLock<Mutex<CacheMap>> = OnceLock::new();
    CACHE.get_or_init(Mutex::default)
}

/// Runs `f` with exclusive access to the library for `key`, creating it
/// via `init` on first use. Libraries persist for the life of the
/// process, so later campaigns with the same key find warm snapshots.
/// `f`'s second argument is `true` when this call created the library —
/// callers distinguishing warm reuse from cold capture must treat
/// everything in a just-created library (the origin snapshot included)
/// as cold.
///
/// The per-library lock is held for the whole of `f`: a campaign
/// producer materializes all its points under one hold, so two
/// campaigns over the same key serialize their production (their
/// workers still overlap). Campaigns with different keys are
/// independent.
///
/// # Panics
///
/// Panics if `key` was previously used with a different machine type —
/// keys embed the seeding domain precisely so that cannot happen.
pub fn with_library<M, R>(
    key: LibraryKey,
    init: impl FnOnce() -> GoldenCheckpointLibrary<M>,
    f: impl FnOnce(&mut GoldenCheckpointLibrary<M>, bool) -> R,
) -> R
where
    M: SnapshotMachine + Send + 'static,
{
    let (slot, created): (Arc<Mutex<GoldenCheckpointLibrary<M>>>, bool) = {
        let mut map = cache().lock();
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (
                Arc::clone(e.get())
                    .downcast::<Mutex<GoldenCheckpointLibrary<M>>>()
                    .expect("one machine type per library key"),
                false,
            ),
            std::collections::hash_map::Entry::Vacant(v) => {
                let fresh = Arc::new(Mutex::new(init()));
                v.insert(fresh.clone());
                (fresh, true)
            }
        }
    };
    let mut lib = slot.lock();
    f(&mut lib, created)
}

/// Number of libraries currently memoized (all machine types).
pub fn cached_libraries() -> usize {
    cache().lock().len()
}

/// Drops every memoized library, forcing the next campaign to rebuild
/// cold. Benchmarks use this to measure cold-vs-warm producer cost;
/// in-flight campaigns keep their own `Arc` and are unaffected.
pub fn clear_library_cache() {
    cache().lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_workloads::{Scale, WorkloadId};

    fn smoke_cpu() -> Cpu {
        Cpu::new(&WorkloadId::Gzipx.build(Scale::smoke()))
    }

    #[test]
    fn snapshots_land_on_stride_boundaries() {
        let mut lib = GoldenCheckpointLibrary::new(smoke_cpu(), 300);
        let m = lib.materialize(1_000).unwrap();
        assert_eq!(m.base_coord, 900);
        assert_eq!(m.machine.retired(), 900);
        let coords: Vec<u64> = lib.metas().map(|m| m.coord).collect();
        assert_eq!(coords, vec![0, 300, 600, 900]);
    }

    #[test]
    fn materialized_machine_matches_a_serial_sweep() {
        let mut lib = GoldenCheckpointLibrary::new(smoke_cpu(), 250);
        let m = lib.materialize(777).unwrap();
        let mut restored = m.machine;
        assert!(restored.step_to(777));

        let mut swept = smoke_cpu();
        assert!(swept.step_to(777));
        assert_eq!(restored.fingerprint(), swept.fingerprint());
    }

    #[test]
    fn out_of_order_requests_reuse_the_frontier() {
        let mut lib = GoldenCheckpointLibrary::new(smoke_cpu(), 100);
        let far = lib.materialize(950).unwrap();
        assert_eq!(far.base_coord, 900);
        let captured = lib.len();
        // An earlier coordinate must be served without new captures.
        let near = lib.materialize(150).unwrap();
        assert_eq!(near.base_coord, 100);
        assert_eq!(lib.len(), captured);
        assert!(near.snap_index < far.snap_index);
    }

    #[test]
    fn coordinates_past_the_halt_are_unreachable() {
        let len = restore_workloads::run_length(WorkloadId::Gzipx, Scale::smoke());
        let mut lib = GoldenCheckpointLibrary::new(smoke_cpu(), 1_000);
        assert!(lib.materialize(len + 5).is_none());
        assert_eq!(lib.stop_coord(), Some(len));
        // Coordinates strictly before the halt stay live.
        assert!(lib.materialize(len - 1).is_some());
    }

    #[test]
    fn digest_tracks_captured_state() {
        let mut a = GoldenCheckpointLibrary::new(smoke_cpu(), 400);
        let mut b = GoldenCheckpointLibrary::new(smoke_cpu(), 400);
        a.materialize(1_500).unwrap();
        assert_ne!(a.digest(), b.digest(), "frontier extension must change the digest");
        b.materialize(1_500).unwrap();
        assert_eq!(a.digest(), b.digest(), "identical golden runs must digest identically");
    }

    #[test]
    fn library_cache_is_keyed_and_warm() {
        let key = LibraryKey {
            domain: 0xD0_0D,
            workload: 0,
            // An arbitrary config identity; production keys digest the
            // machine-shaping config via `restore_core::config_digest`.
            config: 0x7e57_c0ff_1231_4159,
            stride: 350,
        };
        let before = cached_libraries();
        let first = with_library(
            key,
            || GoldenCheckpointLibrary::new(smoke_cpu(), 350),
            |lib, created| {
                assert!(created, "first use must initialize the library");
                lib.materialize(700).map(|m| m.snap_index)
            },
        );
        assert!(cached_libraries() > before);
        let warm_len = with_library::<Cpu, _>(
            key,
            || panic!("second use must not re-initialize"),
            |lib, created| {
                assert!(!created, "second use must find the cached library");
                lib.len()
            },
        );
        assert_eq!(first, Some(2));
        assert_eq!(warm_len, 3, "origin plus two strided snapshots");
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_is_rejected() {
        let _ = GoldenCheckpointLibrary::new(smoke_cpu(), 0);
    }
}
