//! `restore-sweep` — grid-sweeps detector configurations (checkpoint
//! interval × JRS geometry × watchdog timeout × enabled-source subsets,
//! including the software-only signature/duplication sources) and
//! reports the coverage/overhead Pareto frontier per workload and for
//! the pooled suite.
//!
//! Each grid *cell* is a campaign with its own configuration digest, so
//! with `--store DIR` every cell's trials persist independently and a
//! re-sweep (or a single-cell audit run) starts warm. The post-hoc axes
//! — enabled sources and checkpoint interval — are free: they only
//! select among recorded first-firing latencies.
//!
//! Usage: `restore-sweep [--points N] [--trials N] [--seed S]
//! [--threads N] [--cutoff K] [--prune off|on|interval|audit]
//! [--ckpt-stride K] [--store DIR] [--json PATH] [--profile-cycles N]
//! [--intervals A,B,..]`

use restore_bench::sweep::{
    cell_digest, combined_table, default_cells, evaluate_cell, frontier_table,
    mark_pareto_frontiers, render_json, SweepPoint,
};
use restore_bench::{cli, FIG46_INTERVALS};
use restore_inject::{run_uarch_campaign_io, Shard, TrialCache};
use restore_perf::profile_workload;
use restore_workloads::WorkloadId;
use std::collections::BTreeMap;

const USAGE: &str = "restore-sweep [--points N] [--trials N] [--seed S] [--threads N] \
                     [--cutoff K] [--prune off|on|interval|audit] [--ckpt-stride K] \
                     [--store DIR] [--json PATH] [--profile-cycles N] [--intervals A,B,..]";

/// Parses `--intervals 25,100,500` (defaults to the Figures 4–6 axis).
fn intervals(args: &[String]) -> Result<Vec<u64>, cli::CliError> {
    match cli::value(args, "--intervals")? {
        None => Ok(FIG46_INTERVALS.to_vec()),
        Some(list) => list
            .split(',')
            .map(|v| {
                v.parse::<u64>().ok().filter(|&i| i > 0).ok_or_else(|| {
                    cli::CliError(format!("--intervals: `{v}` is not a positive integer"))
                })
            })
            .collect(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::or_exit(
        cli::reject_unknown(
            &args,
            &cli::uarch_flags_plus(&["--json", "--profile-cycles", "--intervals"]),
        ),
        USAGE,
    );
    let mut base = restore_inject::UarchCampaignConfig::default();
    cli::or_exit(cli::apply_uarch_flags(&mut base, &args), USAGE);
    let intervals = cli::or_exit(intervals(&args), USAGE);
    let profile_cycles =
        cli::or_exit(cli::nonzero_u64(&args, "--profile-cycles"), USAGE).unwrap_or(50_000);
    let json_path = cli::or_exit(cli::value(&args, "--json"), USAGE).map(str::to_owned);
    let store_dir = cli::or_exit(cli::store_path(&args), USAGE);

    let cells = default_cells(&base);
    eprintln!(
        "restore-sweep: {} cells x {} source subsets x {} intervals \
         ({} points x {} trials x {} workloads per cell) ...",
        cells.len(),
        cells.iter().map(|c| c.subsets.len()).sum::<usize>(),
        intervals.len(),
        base.points_per_workload,
        base.trials_per_point,
        WorkloadId::ALL.len(),
    );

    // Cells sharing a campaign digest (e.g. `paper` and `hardened`
    // differ only in scoring) simulate once and share the records.
    // BTreeMaps: the cell loop iterates deterministically and the
    // emitted point order must be reproducible run-to-run.
    let mut campaigns: BTreeMap<u64, std::rc::Rc<Vec<restore_inject::UarchTrial>>> =
        BTreeMap::new();
    let mut profiles: BTreeMap<u64, Vec<restore_perf::WorkloadProfile>> = BTreeMap::new();
    let mut points: Vec<SweepPoint> = Vec::new();
    for cell in &cells {
        let digest = cell_digest(cell);
        let trials = campaigns
            .entry(digest)
            .or_insert_with(|| {
                let store = store_dir.as_ref().map(|dir| {
                    cli::or_exit(
                        TrialCache::open(dir, "all", digest)
                            .map_err(|e| cli::CliError(format!("--store {}: {e}", dir.display()))),
                        USAGE,
                    )
                });
                let (trials, stats) = run_uarch_campaign_io(&cell.cfg, store.as_ref(), Shard::ALL);
                if let Some(s) = &store {
                    s.sync().expect("trial store sync failed");
                }
                eprintln!("restore-sweep[{}]: {stats}", cell.name);
                std::rc::Rc::new(trials)
            })
            .clone();
        // The overhead axis needs the fault-free profile under the
        // cell's pipeline geometry (JRS threshold and table size change
        // the false-positive symptom rate). Keyed the same way.
        let profs = profiles.entry(digest).or_insert_with(|| {
            WorkloadId::ALL
                .iter()
                .map(|&id| profile_workload(id, cell.cfg.scale, &cell.cfg.uarch, profile_cycles))
                .collect()
        });
        points.extend(evaluate_cell(cell, &trials, profs, &intervals));
    }
    mark_pareto_frontiers(&mut points);

    let per_workload =
        points.iter().filter(|p| p.workload.is_some()).count() / WorkloadId::ALL.len();
    println!("# restore-sweep — detector configuration coverage/overhead plane");
    println!("# {per_workload} configurations per workload; * marks the pooled Pareto frontier");
    println!("{}", combined_table(&points));
    println!("# per-workload Pareto frontiers (full plane in --json)");
    println!("{}", frontier_table(&points));

    if let Some(path) = json_path {
        std::fs::write(&path, render_json(&points)).expect("write --json output");
        eprintln!("restore-sweep: wrote {} points to {path}", points.len());
    }
}
