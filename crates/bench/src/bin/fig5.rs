//! Figure 5 — ReStore coverage in the baseline pipeline with *realistic*
//! control-flow detection: only JRS high-confidence branch mispredictions
//! count as cfv symptoms.
//!
//! Usage: `fig5 [--points N] [--trials N] [--seed S] [--threads N] [--cutoff K]
//! [--prune off|on|interval|audit]`

use restore_bench::{cli, coverage_summary, uarch_table, FIG46_INTERVALS};
use restore_inject::{run_uarch_campaign_io, CfvMode, Shard, UarchCampaignConfig, UarchCategory};

const USAGE: &str = "fig5 [--points N] [--trials N] [--seed S] [--threads N] [--cutoff K] \
                     [--prune off|on|interval|audit] [--ckpt-stride K] [--store DIR]";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = UarchCampaignConfig::default();
    cli::or_exit(cli::reject_unknown(&args, &cli::UARCH_FLAGS), USAGE);
    cli::or_exit(cli::apply_uarch_flags(&mut cfg, &args), USAGE);

    eprintln!(
        "fig5: {} points x {} trials x 7 workloads ...",
        cfg.points_per_workload, cfg.trials_per_point
    );
    let store = cli::or_exit(cli::open_uarch_store(&cfg, &args), USAGE);
    let (trials, stats) = run_uarch_campaign_io(&cfg, store.as_ref(), Shard::ALL);
    eprintln!("fig5: {stats}");

    println!("# Figure 5 — ReStore coverage (JRS high-confidence cfv detection)");
    println!("# columns: checkpoint interval (instructions); cells: % of all trials");
    println!("{}", uarch_table(&trials, &FIG46_INTERVALS, CfvMode::HighConfidence, false));

    let total = trials.len().max(1) as f64;
    let interval = 100u64;
    let perfect_cfv = trials
        .iter()
        .filter(|t| t.classify(interval, CfvMode::Perfect, false) == UarchCategory::Cfv)
        .count() as f64
        / total;
    let jrs_cfv = trials
        .iter()
        .filter(|t| t.classify(interval, CfvMode::HighConfidence, false) == UarchCategory::Cfv)
        .count() as f64
        / total;
    println!(
        "cfv coverage @{interval}: perfect {:.2}% vs JRS {:.2}% of all trials \
         (paper: JRS covers a small fraction — ~5% of failures)",
        100.0 * perfect_cfv,
        100.0 * jrs_cfv
    );
    let base = coverage_summary(&trials, interval, CfvMode::Perfect, false);
    let jrs = coverage_summary(&trials, interval, CfvMode::HighConfidence, false);
    println!(
        "residual failures @{interval}: perfect-cfv {:.2}% vs JRS {:.2}% \
         (paper: ~3.5% of injections with ReStore)",
        100.0 * base.residual_failure_fraction,
        100.0 * jrs.residual_failure_fraction
    );
}
