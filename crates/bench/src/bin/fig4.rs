//! Figure 4 — microarchitectural fault injection into all state, with
//! perfect identification of exceptions and incorrect control flow, as a
//! function of checkpoint interval. `--latches-only` reproduces the
//! §5.1.2 latch-targeted campaign instead.
//!
//! Usage: `fig4 [--points N] [--trials N] [--seed S] [--latches-only] [--threads N]
//! [--cutoff K] [--prune off|on|interval|audit]`

use restore_bench::{cli, coverage_summary, uarch_table, FIG46_INTERVALS};
use restore_inject::{run_uarch_campaign_io, CfvMode, InjectionTarget, Shard, UarchCampaignConfig};

const USAGE: &str = "fig4 [--points N] [--trials N] [--seed S] [--latches-only] \
                     [--threads N] [--cutoff K] [--prune off|on|interval|audit] [--ckpt-stride K] \
                     [--store DIR]";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = UarchCampaignConfig::default();
    cli::or_exit(cli::reject_unknown(&args, &cli::uarch_flags_plus(&["--latches-only"])), USAGE);
    cli::or_exit(cli::apply_uarch_flags(&mut cfg, &args), USAGE);
    let latches = cli::flag(&args, "--latches-only");
    if latches {
        cfg.target = InjectionTarget::LatchesOnly;
    }

    eprintln!(
        "fig4: {} points x {} trials x 7 workloads ({}) ...",
        cfg.points_per_workload,
        cfg.trials_per_point,
        if latches { "latches only" } else { "all state" }
    );
    let store = cli::or_exit(cli::open_uarch_store(&cfg, &args), USAGE);
    let (trials, stats) = run_uarch_campaign_io(&cfg, store.as_ref(), Shard::ALL);
    eprintln!("fig4: {stats}");

    println!(
        "# Figure 4 — µarch injection into {} (perfect exception+cfv identification)",
        if latches { "latches only (§5.1.2)" } else { "all state" }
    );
    println!("# columns: checkpoint interval (instructions); cells: % of all trials");
    println!("{}", uarch_table(&trials, &FIG46_INTERVALS, CfvMode::Perfect, false));

    let s = coverage_summary(&trials, 100, CfvMode::Perfect, false);
    println!(
        "failure fraction:            {:.1}% ±{:.1}%  (paper: ~8%)",
        100.0 * s.failure_fraction,
        100.0 * s.ci95
    );
    println!(
        "coverage of failures @100:   {:.1}%  (paper: ~50% all-state / ~75% latches)",
        100.0 * s.coverage_of_failures
    );
    println!("residual failure fraction:   {:.1}%", 100.0 * s.residual_failure_fraction);
}
