//! `restore-campaign` — the sharded, resumable campaign runner over the
//! content-addressed trial store.
//!
//! One invocation runs one shard (`--shard i/N`, default the whole
//! plan) of one campaign (`--domain arch|uarch` plus that domain's
//! knobs), recording every finished trial into `--store DIR` and
//! serving any trial the store already holds without simulating it.
//! Trial records print to stdout as canonical JSON lines in plan order
//! — bit-identical however the campaign is split, resumed or threaded —
//! and stats print to stderr.
//!
//! Workflows this enables:
//!
//! * **Sharding**: run `--shard 0/3`, `1/3`, `2/3` on three machines
//!   against separate store directories, then merge by copying the
//!   segment files into one directory (shard labels keep the names
//!   distinct). A run against the merged store replays the full
//!   campaign bit-identically without simulating anything.
//! * **Resuming**: appends are single unbuffered writes of
//!   self-validating lines, so an interrupt (SIGINT, OOM kill, power
//!   loss) costs at most the in-flight trial; the next open truncates
//!   any torn tail and `--resume` re-runs only what is missing.
//!   Without `--resume`, finding records for this exact campaign in the
//!   store is an error — a guard against accidentally reusing a store
//!   and mistaking replayed results for a fresh measurement.
//!
//! Usage: `restore-campaign --domain arch|uarch --store DIR [--shard i/N] [--resume] ...`

use restore_bench::cli;
use restore_inject::{
    arch_campaign_digest, run_arch_campaign_io, run_uarch_campaign_io, uarch_campaign_digest,
    ArchCampaignConfig, CampaignStats, InjectionTarget, Payload, Shard, TrialCache,
    UarchCampaignConfig,
};

const USAGE: &str = "restore-campaign --domain arch|uarch --store DIR [--shard i/N] [--resume]\n\
    arch knobs:  [--trials N] [--size N] [--low32] [--seed S] [--threads N] [--cutoff K] \
    [--prune off|on|interval|audit] [--ckpt-stride K] [--sig-chunk N] [--dup-mask M]\n\
    uarch knobs: [--points N] [--trials N] [--latches-only] [--seed S] [--threads N] \
    [--cutoff K] [--prune off|on|interval|audit] [--ckpt-stride K] [--sig-chunk N] \
    [--dup-mask M]";

/// Parses the flags every domain shares; returns `(store dir, shard,
/// resume)`.
fn shared_flags(args: &[String]) -> Result<(std::path::PathBuf, Shard, bool), cli::CliError> {
    let store = cli::store_path(args)?
        .ok_or_else(|| cli::CliError("--store DIR is required".to_owned()))?;
    let shard = match cli::value(args, "--shard")? {
        None => Shard::ALL,
        Some(v) => Shard::parse(v).map_err(|e| cli::CliError(format!("--shard: {e}")))?,
    };
    Ok((store, shard, cli::flag(args, "--resume")))
}

/// Refuses to silently replay an existing campaign: records for this
/// exact configuration already in the store require `--resume`.
fn resume_gate<T: Payload>(cache: &TrialCache<T>, resume: bool) {
    let held = cache.cached_for_config();
    if held > 0 && !resume {
        eprintln!(
            "error: the store already holds {held} records for this campaign configuration; \
             pass --resume to serve them (or point --store at a fresh directory)"
        );
        std::process::exit(2);
    }
}

/// The greppable outcome line (`cycles-simulated 0` is the fully-warm
/// signature the CI cache-equivalence job checks for).
fn report(domain: &str, shard: Shard, stats: &CampaignStats) {
    eprintln!("restore-campaign[{domain} {shard}]: {stats}");
    eprintln!(
        "restore-campaign[{domain} {shard}]: trials {} cached {} cycles-simulated {} \
         cycles-cached {}",
        stats.trials, stats.trials_cached, stats.cycles_simulated, stats.cycles_cached
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let domain = cli::or_exit(
        cli::value(&args, "--domain").and_then(|v| {
            v.map(str::to_owned)
                .ok_or_else(|| cli::CliError("--domain arch|uarch is required".to_owned()))
        }),
        USAGE,
    );
    match domain.as_str() {
        "arch" => {
            cli::or_exit(
                cli::reject_unknown(
                    &args,
                    &[
                        "--domain",
                        "--store",
                        "--shard",
                        "--resume",
                        "--trials",
                        "--size",
                        "--low32",
                        "--seed",
                        "--threads",
                        "--cutoff",
                        "--prune",
                        "--ckpt-stride",
                        "--sig-chunk",
                        "--dup-mask",
                    ],
                ),
                USAGE,
            );
            let (dir, shard, resume) = cli::or_exit(shared_flags(&args), USAGE);
            let mut cfg = ArchCampaignConfig::default();
            cli::or_exit(cli::apply_arch_flags(&mut cfg, &args, "--trials"), USAGE);
            let cache = cli::or_exit(
                TrialCache::open(&dir, &shard.label(), arch_campaign_digest(&cfg))
                    .map_err(|e| cli::CliError(format!("--store {}: {e}", dir.display()))),
                USAGE,
            );
            resume_gate(&cache, resume);
            let (trials, stats) = run_arch_campaign_io(&cfg, Some(&cache), shard);
            for t in &trials {
                println!("{}", t.encode().render());
            }
            cache.sync().expect("trial store sync failed");
            report("arch", shard, &stats);
        }
        "uarch" => {
            cli::or_exit(
                cli::reject_unknown(
                    &args,
                    &cli::uarch_flags_plus(&["--domain", "--shard", "--resume", "--latches-only"]),
                ),
                USAGE,
            );
            let (dir, shard, resume) = cli::or_exit(shared_flags(&args), USAGE);
            let mut cfg = UarchCampaignConfig::default();
            cli::or_exit(cli::apply_uarch_flags(&mut cfg, &args), USAGE);
            if cli::flag(&args, "--latches-only") {
                cfg.target = InjectionTarget::LatchesOnly;
            }
            let cache = cli::or_exit(
                TrialCache::open(&dir, &shard.label(), uarch_campaign_digest(&cfg))
                    .map_err(|e| cli::CliError(format!("--store {}: {e}", dir.display()))),
                USAGE,
            );
            resume_gate(&cache, resume);
            let (trials, stats) = run_uarch_campaign_io(&cfg, Some(&cache), shard);
            for t in &trials {
                println!("{}", t.encode().render());
            }
            cache.sync().expect("trial store sync failed");
            report("uarch", shard, &stats);
        }
        other => {
            cli::or_exit(
                Err::<(), _>(cli::CliError(format!("--domain: `{other}` is not arch|uarch"))),
                USAGE,
            );
        }
    }
}
