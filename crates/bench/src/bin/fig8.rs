//! Figure 8 — silent-data-corruption FIT rates as a function of design
//! size for the four protection configurations, against the 1000-year
//! MTBF goal line (115 FIT).
//!
//! By default the failure fractions are measured by a fresh campaign;
//! `--paper` uses the paper's reported fractions instead, and
//! `--points/--trials` scale the measurement.
//!
//! Usage: `fig8 [--paper] [--points N] [--trials N] [--seed S] [--threads N]
//! [--cutoff K] [--prune off|on|interval|audit]`

use restore_bench::{cli, coverage_summary};
use restore_core::fit::{figure8_sizes, FitScaling, MTBF_GOAL_FIT};
use restore_inject::{run_uarch_campaign_io, CfvMode, Shard, UarchCampaignConfig};

const USAGE: &str = "fig8 [--paper] [--points N] [--trials N] [--seed S] [--threads N] \
                     [--cutoff K] [--prune off|on|interval|audit] [--ckpt-stride K] [--store DIR]";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::or_exit(cli::reject_unknown(&args, &cli::uarch_flags_plus(&["--paper"])), USAGE);
    let scaling = if cli::flag(&args, "--paper") {
        eprintln!("fig8: using the paper's reported failure fractions");
        FitScaling::paper()
    } else {
        let mut cfg = UarchCampaignConfig::default();
        cli::or_exit(cli::apply_uarch_flags(&mut cfg, &args), USAGE);
        eprintln!(
            "fig8: measuring failure fractions ({} points x {} trials x 7 workloads) ...",
            cfg.points_per_workload, cfg.trials_per_point
        );
        let store = cli::or_exit(cli::open_uarch_store(&cfg, &args), USAGE);
        let (trials, _) = run_uarch_campaign_io(&cfg, store.as_ref(), Shard::ALL);
        let base = coverage_summary(&trials, 100, CfvMode::HighConfidence, false);
        let hard = coverage_summary(&trials, 100, CfvMode::HighConfidence, true);
        eprintln!(
            "fig8: measured fractions: baseline {:.3} restore {:.3} lhf {:.3} lhf+restore {:.3}",
            base.failure_fraction,
            base.residual_failure_fraction,
            hard.failure_fraction,
            hard.residual_failure_fraction
        );
        FitScaling::new(
            base.failure_fraction.max(1e-4),
            base.residual_failure_fraction.max(1e-4),
            hard.failure_fraction.max(1e-4),
            hard.residual_failure_fraction.max(1e-4),
        )
    };

    println!("# Figure 8 — FIT rates with device scaling (0.001 FIT/bit raw)");
    println!("# goal line: 1000-year MTBF = {MTBF_GOAL_FIT:.0} FIT");
    println!("{:<12}{:>12}{:>12}{:>12}{:>14}", "bits", "baseline", "ReStore", "lhf", "lhf+ReStore");
    for (bits, base, restore, lhf, both) in scaling.series(&figure8_sizes()) {
        println!(
            "{:<12}{:>12.1}{:>12.1}{:>12.1}{:>14.1}",
            format_bits(bits),
            base,
            restore,
            lhf,
            both
        );
    }
    println!(
        "\nMTBF improvement (lhf+ReStore over baseline): {:.1}x  (paper: ~7x)",
        scaling.mtbf_improvement()
    );
    println!(
        "largest design meeting the goal: baseline {} bits, lhf+ReStore {} bits",
        format_bits(scaling.baseline.max_bits_at_goal()),
        format_bits(scaling.lhf_restore.max_bits_at_goal())
    );
}

fn format_bits(b: f64) -> String {
    if b >= 1.0e6 {
        format!("{:.1}M", b / 1.0e6)
    } else {
        format!("{:.0}k", b / 1.0e3)
    }
}
