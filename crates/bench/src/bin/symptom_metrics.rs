//! §3.3 — generalised symptom evaluation: scores every candidate symptom
//! on the paper's three metrics:
//!
//! 1. how often failure-causing errors generate the symptom (coverage),
//! 2. the typical error-to-symptom propagation latency,
//! 3. how often the symptom fires in the *absence* of an error (false
//!    positives — the performance cost of arming it).
//!
//! Reproduces the paper's verdicts: exceptions score well on all three;
//! high-confidence mispredictions trade coverage for near-zero false
//! positives; raw mispredictions and cache misses fail metric 3.
//!
//! Usage: `symptom_metrics [--points N] [--trials N] [--seed S] [--threads N] [--cutoff K]
//! [--prune off|on|interval|audit]`

use restore_bench::cli;
use restore_inject::{run_uarch_campaign_io, Shard, UarchCampaignConfig, UarchTrial};
use restore_uarch::{Pipeline, Stop, UarchConfig};
use restore_workloads::{Scale, WorkloadId};

struct Metric {
    name: &'static str,
    covered: usize,
    latencies: Vec<u64>,
    /// False positives per 1000 fault-free instructions.
    fp_per_kinstr: f64,
    verdict: &'static str,
}

fn median(v: &mut [u64]) -> Option<u64> {
    if v.is_empty() {
        return None;
    }
    v.sort_unstable();
    Some(v[v.len() / 2])
}

const USAGE: &str = "symptom_metrics [--points N] [--trials N] [--seed S] [--threads N] \
                     [--cutoff K] [--prune off|on|interval|audit] [--ckpt-stride K] [--store DIR]";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // This study wants more bits per point than the campaign default.
    let mut cfg = UarchCampaignConfig { trials_per_point: 12, ..UarchCampaignConfig::default() };
    cli::or_exit(cli::reject_unknown(&args, &cli::UARCH_FLAGS), USAGE);
    cli::or_exit(cli::apply_uarch_flags(&mut cfg, &args), USAGE);

    // ---- metric 3: fault-free event rates ----
    eprintln!("measuring fault-free symptom rates ...");
    let mut instructions = 0u64;
    let (mut exceptions, mut hc_mis, mut all_mis) = (0u64, 0u64, 0u64);
    let (mut dc0, mut dt0) = (0u64, 0u64);
    for id in WorkloadId::ALL {
        let program = id.build(Scale::campaign());
        let mut pipe = Pipeline::new(UarchConfig::default(), &program);
        for _ in 0..60_000 {
            if pipe.status() != Stop::Running {
                break;
            }
            let r = pipe.cycle();
            exceptions += r.exception.is_some() as u64;
            for m in &r.mispredicts {
                if m.conditional {
                    all_mis += 1;
                    hc_mis += m.high_confidence as u64;
                }
            }
        }
        instructions += pipe.retired();
        let (_, dc, _, dt) = pipe.miss_counters();
        dc0 += dc;
        dt0 += dt;
    }
    let per_kinstr = |n: u64| 1000.0 * n as f64 / instructions.max(1) as f64;

    // ---- metrics 1 & 2: campaign coverage and latency ----
    eprintln!(
        "running campaign ({} points x {} trials x 7 workloads) ...",
        cfg.points_per_workload, cfg.trials_per_point
    );
    let store = cli::or_exit(cli::open_uarch_store(&cfg, &args), USAGE);
    let (trials, stats) = run_uarch_campaign_io(&cfg, store.as_ref(), Shard::ALL);
    let failures: Vec<&UarchTrial> = trials.iter().filter(|t| t.is_failure()).collect();
    eprintln!("{stats} ({} failures)", failures.len());

    let collect = |f: &dyn Fn(&UarchTrial) -> Option<u64>| -> (usize, Vec<u64>) {
        let mut lats = Vec::new();
        let mut covered = 0;
        for t in &failures {
            if let Some(l) = f(t) {
                covered += 1;
                lats.push(l);
            }
        }
        (covered, lats)
    };

    let (exc_c, exc_l) = collect(&|t| t.symptoms.exception.or(t.symptoms.deadlock));
    let (hc_c, hc_l) = collect(&|t| t.hc_mispredict);
    let (any_c, any_l) = collect(&|t| t.any_mispredict);
    let (dc_c, dc_l) = collect(&|t| (t.extra_dcache_misses > 0).then_some(0));
    let (dt_c, dt_l) = collect(&|t| (t.extra_dtlb_misses > 0).then_some(0));

    let metrics = [
        Metric {
            name: "exception (+watchdog)",
            covered: exc_c,
            latencies: exc_l,
            fp_per_kinstr: per_kinstr(exceptions),
            verdict: "excellent: high coverage, short latency, ~zero false positives",
        },
        Metric {
            name: "high-conf mispredict",
            covered: hc_c,
            latencies: hc_l,
            fp_per_kinstr: per_kinstr(hc_mis),
            verdict: "paper's pick: modest coverage, very low false positives",
        },
        Metric {
            name: "any mispredict",
            covered: any_c,
            latencies: any_l,
            fp_per_kinstr: per_kinstr(all_mis),
            verdict: "\"unacceptably costly\": rollback on every flush (§3.2.2)",
        },
        Metric {
            name: "d-cache miss",
            covered: dc_c,
            latencies: dc_l,
            fp_per_kinstr: per_kinstr(dc0),
            verdict: "§3.3's cautionary example: fails metric 3",
        },
        Metric {
            name: "d-TLB miss",
            covered: dt_c,
            latencies: dt_l,
            fp_per_kinstr: per_kinstr(dt0),
            verdict: "rarer than cache misses but still frequent vs errors",
        },
    ];

    println!("# §3.3 — candidate symptom evaluation over {} failures", failures.len());
    println!("{:<24}{:>12}{:>16}{:>16}", "symptom", "coverage", "median latency", "fp / kinstr");
    for mut m in metrics {
        let med = median(&mut m.latencies).map(|v| v.to_string()).unwrap_or_else(|| "-".into());
        println!(
            "{:<24}{:>11.1}%{:>16}{:>16.3}   {}",
            m.name,
            100.0 * m.covered as f64 / failures.len().max(1) as f64,
            med,
            m.fp_per_kinstr,
            m.verdict
        );
    }
    println!(
        "\n(fault-free rates measured over {} instructions across all 7 workloads)",
        instructions
    );
}
