//! Runs a single shared microarchitectural campaign and regenerates
//! Figures 4, 5, 6 and 8 from it, plus Figure 2 (architectural campaign)
//! and Figure 7 (timing model) — everything the paper's evaluation
//! section reports, in one pass.
//!
//! Usage: `figs_all [--points N] [--trials N] [--arch-trials N] [--seed S] [--threads N]
//! [--cutoff K] [--prune off|on|interval|audit]`

use restore_bench::*;
use restore_core::fit::{figure8_sizes, FitScaling, MTBF_GOAL_FIT};
use restore_inject::{
    run_arch_campaign_io, run_uarch_campaign_io, ArchCampaignConfig, CfvMode, InjectionTarget,
    Shard, UarchCampaignConfig,
};
use restore_perf::{profile_all, PerfModel, Policy, FIGURE7_INTERVALS};
use restore_uarch::UarchConfig;

const USAGE: &str = "figs_all [--points N] [--trials N] [--arch-trials N] [--seed S] \
                     [--threads N] [--cutoff K] [--prune off|on|interval|audit] [--ckpt-stride K] \
                     [--store DIR]";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // determinism: allow -- stderr progress timing; figure output is time-free
    let t0 = std::time::Instant::now();
    cli::or_exit(cli::reject_unknown(&args, &cli::uarch_flags_plus(&["--arch-trials"])), USAGE);

    // ---------------- Figure 2 ----------------
    let mut acfg = ArchCampaignConfig::default();
    cli::or_exit(cli::apply_arch_flags(&mut acfg, &args, "--arch-trials"), USAGE);
    eprintln!(
        "[{:6.1}s] figure 2 ({} trials/workload) ...",
        t0.elapsed().as_secs_f64(),
        acfg.trials_per_workload
    );
    // One `--store` directory serves all four campaigns below: each
    // opens it under its own campaign digest, so records never cross.
    let (arch_trials, astats) = {
        let store = cli::or_exit(cli::open_arch_store(&acfg, &args), USAGE);
        run_arch_campaign_io(&acfg, store.as_ref(), Shard::ALL)
    };
    eprintln!("[{:6.1}s] figure 2: {astats}", t0.elapsed().as_secs_f64());
    println!("==== Figure 2 — virtual machine fault injection ({} trials) ====", arch_trials.len());
    println!("{}", arch_table(&arch_trials, &FIG2_LATENCIES));

    let low32 = ArchCampaignConfig { low32: true, ..acfg.clone() };
    let (low32_trials, _) = {
        let store = cli::or_exit(cli::open_arch_store(&low32, &args), USAGE);
        run_arch_campaign_io(&low32, store.as_ref(), Shard::ALL)
    };
    println!("==== Figure 2 variant — low-32-bit flips (§3.1) ====");
    println!("{}", arch_table(&low32_trials, &FIG2_LATENCIES));

    // ---------------- Shared µarch campaign ----------------
    let mut ucfg = UarchCampaignConfig::default();
    cli::or_exit(cli::apply_uarch_flags(&mut ucfg, &args), USAGE);
    eprintln!(
        "[{:6.1}s] µarch campaign ({} points x {} trials x 7 workloads) ...",
        t0.elapsed().as_secs_f64(),
        ucfg.points_per_workload,
        ucfg.trials_per_point
    );
    let (trials, ustats) = {
        let store = cli::or_exit(cli::open_uarch_store(&ucfg, &args), USAGE);
        run_uarch_campaign_io(&ucfg, store.as_ref(), Shard::ALL)
    };
    eprintln!("[{:6.1}s] µarch campaign: {ustats}", t0.elapsed().as_secs_f64());

    println!(
        "==== Figure 4 — µarch injection, all state, perfect cfv ({} trials) ====",
        trials.len()
    );
    println!("{}", uarch_table(&trials, &FIG46_INTERVALS, CfvMode::Perfect, false));

    let latch_cfg = UarchCampaignConfig { target: InjectionTarget::LatchesOnly, ..ucfg.clone() };
    let (latch_trials, _) = {
        let store = cli::or_exit(cli::open_uarch_store(&latch_cfg, &args), USAGE);
        run_uarch_campaign_io(&latch_cfg, store.as_ref(), Shard::ALL)
    };
    println!("==== §5.1.2 — latches only, perfect cfv ({} trials) ====", latch_trials.len());
    println!("{}", uarch_table(&latch_trials, &FIG46_INTERVALS, CfvMode::Perfect, false));
    let l = coverage_summary(&latch_trials, 100, CfvMode::Perfect, false);
    println!(
        "latch-only coverage of failures @100: {:.1}%  (paper: ~75%)\n",
        100.0 * l.coverage_of_failures
    );

    println!("==== Figure 5 — ReStore (JRS-confidence cfv) ====");
    println!("{}", uarch_table(&trials, &FIG46_INTERVALS, CfvMode::HighConfidence, false));

    println!("==== Figure 6 — hardened pipeline + ReStore ====");
    println!("{}", uarch_table(&trials, &FIG46_INTERVALS, CfvMode::HighConfidence, true));

    let base100 = coverage_summary(&trials, 100, CfvMode::Perfect, false);
    let jrs100 = coverage_summary(&trials, 100, CfvMode::HighConfidence, false);
    let hard100 = coverage_summary(&trials, 100, CfvMode::HighConfidence, true);
    println!("headline @100-instruction interval:");
    println!(
        "  failure fraction          {:.2}% ±{:.2}%  (paper ~7-8%)",
        100.0 * base100.failure_fraction,
        100.0 * base100.ci95
    );
    println!(
        "  perfect-cfv coverage      {:.1}%  (paper ~50%)",
        100.0 * base100.coverage_of_failures
    );
    println!(
        "  ReStore residual          {:.2}%  (paper ~3.5%)",
        100.0 * jrs100.residual_failure_fraction
    );
    println!("  lhf failure fraction      {:.2}%  (paper ~3%)", 100.0 * hard100.failure_fraction);
    println!(
        "  lhf+ReStore residual      {:.2}%  (paper ~1%)",
        100.0 * hard100.residual_failure_fraction
    );
    println!(
        "  MTBF improvement          {:.1}x  (paper ~7x)\n",
        base100.failure_fraction / hard100.residual_failure_fraction.max(1e-9)
    );

    // ---------------- Figure 7 ----------------
    eprintln!("[{:6.1}s] figure 7 ...", t0.elapsed().as_secs_f64());
    let profiles = profile_all(ucfg.scale, &UarchConfig::default(), 150_000);
    let model = PerfModel::default();
    println!("==== Figure 7 — performance impact of false positives ====");
    println!("{:<10}{:>10}{:>10}", "interval", "imm", "delayed");
    for &i in &FIGURE7_INTERVALS {
        println!(
            "{i:<10}{:>10.3}{:>10.3}",
            model.mean_speedup(&profiles, i, Policy::Immediate),
            model.mean_speedup(&profiles, i, Policy::Delayed)
        );
    }
    println!();

    // ---------------- Figure 8 ----------------
    let scaling = FitScaling::new(
        base100.failure_fraction.max(1e-4),
        jrs100.residual_failure_fraction.max(1e-4),
        hard100.failure_fraction.max(1e-4),
        hard100.residual_failure_fraction.max(1e-4),
    );
    println!(
        "==== Figure 8 — FIT vs design size (measured fractions; goal {MTBF_GOAL_FIT:.0} FIT) ===="
    );
    println!("{:<12}{:>12}{:>12}{:>12}{:>14}", "bits", "baseline", "ReStore", "lhf", "lhf+ReStore");
    for (bits, base, restore, lhf, both) in scaling.series(&figure8_sizes()) {
        println!("{:<12.0}{:>12.1}{:>12.1}{:>12.1}{:>14.1}", bits, base, restore, lhf, both);
    }
    println!("MTBF improvement: {:.1}x  (paper ~7x)", scaling.mtbf_improvement());
    eprintln!("[{:6.1}s] all figures done", t0.elapsed().as_secs_f64());
}
