//! Figure 7 — performance impact of false-positive symptoms: relative
//! performance vs. checkpoint interval for the `imm` and `delayed`
//! rollback policies.
//!
//! Usage: `fig7 [--cycles N] [--size N]`

use restore_bench::cli;
use restore_perf::{profile_all, PerfModel, Policy, FIGURE7_INTERVALS};
use restore_uarch::UarchConfig;
use restore_workloads::Scale;

const USAGE: &str = "fig7 [--cycles N] [--size N]";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::or_exit(cli::reject_unknown(&args, &["--cycles", "--size"]), USAGE);
    let cycles = cli::or_exit(cli::nonzero_u64(&args, "--cycles"), USAGE).unwrap_or(150_000);
    let mut scale = Scale::campaign();
    if let Some(n) = cli::or_exit(cli::nonzero_u64(&args, "--size"), USAGE) {
        scale.size = n as usize;
    }

    eprintln!("fig7: profiling 7 workloads for {cycles} cycles each ...");
    let start = std::time::Instant::now();
    let profiles = profile_all(scale, &UarchConfig::default(), cycles);
    eprintln!("fig7: profiled in {:.1}s", start.elapsed().as_secs_f64());

    for p in &profiles {
        eprintln!(
            "  {:8} ipc={:.2} mispredicts/kinstr={:.1} fp-symptoms/kinstr={:.2}",
            p.workload.name(),
            1.0 / p.cpi(),
            1000.0 * p.mispredicts as f64 / p.instructions.max(1) as f64,
            1000.0 * p.symptom_rate()
        );
    }

    let model = PerfModel::default();
    println!("# Figure 7 — performance impact of false positive symptoms");
    println!("# rows: checkpoint interval; speedup relative to no-checkpoint baseline");
    println!("{:<10}{:>10}{:>10}", "interval", "imm", "delayed");
    for &i in &FIGURE7_INTERVALS {
        let imm = model.mean_speedup(&profiles, i, Policy::Immediate);
        let del = model.mean_speedup(&profiles, i, Policy::Delayed);
        println!("{i:<10}{imm:>10.3}{del:>10.3}");
    }
    let at100 = model.mean_speedup(&profiles, 100, Policy::Immediate);
    println!("\nperformance hit @100 (imm): {:.1}%  (paper: ~6%)", 100.0 * (1.0 - at100));
}
