//! Figure 7 — performance impact of false-positive symptoms: relative
//! performance vs. checkpoint interval for the `imm` and `delayed`
//! rollback policies.
//!
//! Two estimates are reported per interval: the paper's analytic model
//! (1.5/2-interval rollback distances priced at the re-execution CPI)
//! and a **replayed** figure in which every rollback actually restores
//! the older checkpoint from the golden checkpoint library and
//! re-executes, so the rollback distance is measured, not assumed
//! (`restore_core::measure_rollbacks`).
//!
//! Usage: `fig7 [--cycles N] [--size N] [--ckpt-stride K]`

use restore_bench::cli;
use restore_core::{measure_rollbacks, ReplayMeasurement, RollbackPolicy};
use restore_inject::effective_ckpt_stride;
use restore_perf::{profile_all, PerfModel, Policy, WorkloadProfile, FIGURE7_INTERVALS};
use restore_uarch::UarchConfig;
use restore_workloads::Scale;

const USAGE: &str = "fig7 [--cycles N] [--size N] [--ckpt-stride K]";

/// Geometric-mean speedup with each workload's rollback cycles replaced
/// by its *measured* re-execution instructions, priced at the same
/// re-execution CPI the analytic model uses.
fn replayed_mean_speedup(model: &PerfModel, rows: &[(WorkloadProfile, ReplayMeasurement)]) -> f64 {
    if rows.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = rows
        .iter()
        .map(|(p, m)| {
            let base = p.cycles as f64;
            let replay_cycles = m.reexec_instructions as f64 * model.reexec_cpi(p);
            (base / (base + replay_cycles)).ln()
        })
        .sum();
    (log_sum / rows.len() as f64).exp()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::or_exit(cli::reject_unknown(&args, &["--cycles", "--size", "--ckpt-stride"]), USAGE);
    let cycles = cli::or_exit(cli::nonzero_u64(&args, "--cycles"), USAGE).unwrap_or(150_000);
    let mut scale = Scale::campaign();
    if let Some(n) = cli::or_exit(cli::nonzero_u64(&args, "--size"), USAGE) {
        scale.size = n as usize;
    }
    // Replay needs checkpoints; 0 falls back to the default stride.
    let ckpt_stride = match cli::or_exit(cli::parsed_u64(&args, "--ckpt-stride"), USAGE) {
        Some(k) if k > 0 => k,
        _ => effective_ckpt_stride(5_000).max(1),
    };

    eprintln!("fig7: profiling 7 workloads for {cycles} cycles each ...");
    // determinism: allow -- stderr progress timing; figure output is time-free
    let start = std::time::Instant::now();
    let profiles = profile_all(scale, &UarchConfig::default(), cycles);
    eprintln!("fig7: profiled in {:.1}s", start.elapsed().as_secs_f64());

    for p in &profiles {
        eprintln!(
            "  {:8} ipc={:.2} mispredicts/kinstr={:.1} fp-symptoms/kinstr={:.2}",
            p.workload.name(),
            1.0 / p.cpi(),
            1000.0 * p.mispredicts as f64 / p.instructions.max(1) as f64,
            1000.0 * p.symptom_rate()
        );
    }

    let model = PerfModel::default();
    let replay =
        |interval: u64, policy: RollbackPolicy| -> Vec<(WorkloadProfile, ReplayMeasurement)> {
            profiles
                .iter()
                .map(|p| {
                    let m = measure_rollbacks(
                        p.workload,
                        scale,
                        interval,
                        policy,
                        &p.symptom_positions,
                        ckpt_stride,
                    );
                    (p.clone(), m)
                })
                .collect()
        };

    println!("# Figure 7 — performance impact of false positive symptoms");
    println!("# rows: checkpoint interval; speedup relative to no-checkpoint baseline");
    println!("# (replay restores the older checkpoint at stride {ckpt_stride} and re-executes)");
    println!(
        "{:<10}{:>10}{:>12}{:>10}{:>12}",
        "interval", "imm", "imm-replay", "delayed", "del-replay"
    );
    for &i in &FIGURE7_INTERVALS {
        let imm = model.mean_speedup(&profiles, i, Policy::Immediate);
        let del = model.mean_speedup(&profiles, i, Policy::Delayed);
        let imm_rows = replay(i, RollbackPolicy::Immediate);
        let del_rows = replay(i, RollbackPolicy::Delayed);
        let imm_replay = replayed_mean_speedup(&model, &imm_rows);
        let del_replay = replayed_mean_speedup(&model, &del_rows);
        println!("{i:<10}{imm:>10.3}{imm_replay:>12.3}{del:>10.3}{del_replay:>12.3}");
    }

    let at100 = model.mean_speedup(&profiles, 100, Policy::Immediate);
    let replay100 = replayed_mean_speedup(&model, &replay(100, RollbackPolicy::Immediate));
    let rows100 = replay(100, RollbackPolicy::Immediate);
    let rollbacks: u64 = rows100.iter().map(|(_, m)| m.rollbacks).sum();
    let verified: u64 = rows100.iter().map(|(_, m)| m.restores_verified).sum();
    let ratio: f64 = {
        let measured: u64 = rows100.iter().map(|(_, m)| m.reexec_instructions).sum();
        let analytic: f64 = rows100.iter().map(|(_, m)| m.analytic_instructions).sum();
        if analytic > 0.0 {
            measured as f64 / analytic
        } else {
            1.0
        }
    };
    println!("\nperformance hit @100 (imm):         {:.1}%  (paper: ~6%)", 100.0 * (1.0 - at100));
    println!("performance hit @100 (imm, replay): {:.1}%", 100.0 * (1.0 - replay100));
    println!(
        "replay @100: {rollbacks} rollbacks, {verified} fingerprint-verified restores, \
         measured/analytic re-execution = {ratio:.2}"
    );
}
