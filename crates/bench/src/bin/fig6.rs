//! Figure 6 — ReStore coverage in the *hardened* pipeline: parity on
//! control-word latches + ECC on the register file, alias tables and
//! other key data stores (§5.2.2's "low hanging fruit"), layered with
//! symptom-based detection.
//!
//! Usage: `fig6 [--points N] [--trials N] [--seed S] [--threads N] [--cutoff K]
//! [--prune off|on|interval|audit]`

use restore_bench::{cli, coverage_summary, uarch_table, FIG46_INTERVALS};
use restore_inject::{run_uarch_campaign_io, CfvMode, Shard, UarchCampaignConfig};
use restore_uarch::{Pipeline, UarchConfig};
use restore_workloads::WorkloadId;

const USAGE: &str = "fig6 [--points N] [--trials N] [--seed S] [--threads N] [--cutoff K] \
                     [--prune off|on|interval|audit] [--ckpt-stride K] [--store DIR]";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = UarchCampaignConfig::default();
    cli::or_exit(cli::reject_unknown(&args, &cli::UARCH_FLAGS), USAGE);
    cli::or_exit(cli::apply_uarch_flags(&mut cfg, &args), USAGE);

    // Report the protection domain size (paper: ~7% state overhead for
    // parity/ECC; the covered fraction of bits is what matters here).
    let program = WorkloadId::Mcfx.build(cfg.scale);
    let mut probe = Pipeline::new(UarchConfig::default(), &program);
    let catalog = probe.catalog();
    eprintln!(
        "fig6: lhf protection covers {:.1}% of {} state bits at {:.1}% storage overhead (paper: ~7%)",
        100.0 * catalog.lhf_coverage(),
        catalog.total_bits,
        100.0 * catalog.lhf_overhead()
    );

    let store = cli::or_exit(cli::open_uarch_store(&cfg, &args), USAGE);
    let (trials, stats) = run_uarch_campaign_io(&cfg, store.as_ref(), Shard::ALL);
    eprintln!("fig6: {stats}");

    println!("# Figure 6 — hardened (parity/ECC) pipeline + ReStore");
    println!("# columns: checkpoint interval (instructions); cells: % of all trials");
    println!("{}", uarch_table(&trials, &FIG46_INTERVALS, CfvMode::HighConfidence, true));

    // The paper's §5.2.2 progression of failure rates.
    let base = coverage_summary(&trials, 100, CfvMode::HighConfidence, false);
    let hard = coverage_summary(&trials, 100, CfvMode::HighConfidence, true);
    println!(
        "failure fraction, baseline:        {:.2}%  (paper: ~7%)",
        100.0 * base.failure_fraction
    );
    println!(
        "  + ReStore @100:                  {:.2}%  (paper: ~3.5%)",
        100.0 * base.residual_failure_fraction
    );
    println!(
        "failure fraction, lhf:             {:.2}%  (paper: ~3%)",
        100.0 * hard.failure_fraction
    );
    println!(
        "  + ReStore @100 (lhf+ReStore):    {:.2}%  (paper: ~1%)",
        100.0 * hard.residual_failure_fraction
    );
    let improvement = base.failure_fraction / hard.residual_failure_fraction.max(1e-9);
    println!("MTBF improvement lhf+ReStore:      {improvement:.1}x  (paper: ~7x)");
}
