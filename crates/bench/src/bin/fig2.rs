//! Figure 2 — virtual machine fault injection: propagation of a single
//! bit flip in an instruction result to symptoms, by latency.
//!
//! Usage: `fig2 [--trials N] [--seed S] [--low32] [--size N] [--threads N] [--cutoff K] [--prune off|on|interval|audit] [--ckpt-stride K]`

use restore_bench::{arch_table, cli, FIG2_LATENCIES};
use restore_inject::{
    run_arch_campaign_io, worst_case_ci95, ArchCampaignConfig, ArchCategory, Shard,
};

const USAGE: &str = "fig2 [--trials N] [--seed S] [--low32] [--size N] [--threads N] [--cutoff K] \
                     [--prune off|on|interval|audit] [--ckpt-stride K] [--store DIR] \
                     [--sig-chunk N] [--dup-mask M]";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = ArchCampaignConfig::default();
    cli::or_exit(
        cli::reject_unknown(
            &args,
            &[
                "--trials",
                "--seed",
                "--low32",
                "--size",
                "--threads",
                "--cutoff",
                "--prune",
                "--ckpt-stride",
                "--store",
                "--sig-chunk",
                "--dup-mask",
            ],
        ),
        USAGE,
    );
    cli::or_exit(cli::apply_arch_flags(&mut cfg, &args, "--trials"), USAGE);

    eprintln!(
        "fig2: {} trials/workload x 7 workloads{} ...",
        cfg.trials_per_workload,
        if cfg.low32 { " (low 32 bits only)" } else { "" }
    );
    let store = cli::or_exit(cli::open_arch_store(&cfg, &args), USAGE);
    let (trials, stats) = run_arch_campaign_io(&cfg, store.as_ref(), Shard::ALL);
    eprintln!("fig2: {stats}");

    println!("# Figure 2 — virtual machine fault injection");
    println!("# columns: symptom-latency bound (instructions); cells: % of all trials");
    println!("{}", arch_table(&trials, &FIG2_LATENCIES));

    let total = trials.len() as f64;
    let masked = trials.iter().filter(|t| t.masked).count() as f64 / total;
    let failing = 1.0 - masked;
    let exc100 =
        trials.iter().filter(|t| t.classify(100) == ArchCategory::Exception).count() as f64 / total;
    let cfv100 =
        trials.iter().filter(|t| t.classify(100) == ArchCategory::Cfv).count() as f64 / total;
    println!("masked fraction:                 {:.1}%  (paper: ~59%)", 100.0 * masked);
    println!("exception within 100 insns:      {:.1}%  (paper: ~24%)", 100.0 * exc100);
    println!("cfv within 100 insns:            {:.1}%  (paper: ~8%)", 100.0 * cfv100);
    println!(
        "symptom coverage of failures@100: {:.1}%  (paper: ~80%)",
        100.0 * (exc100 + cfv100) / failing.max(1e-9)
    );
    println!(
        "worst-case 95% CI: ±{:.1}% over {} trials",
        100.0 * worst_case_ci95(trials.len() as u64),
        trials.len()
    );
}
