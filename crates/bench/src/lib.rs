//! # restore-bench
//!
//! Benchmark harness regenerating every figure of the ReStore paper.
//!
//! One binary per figure prints the same series the paper plots:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2` | Figure 2 — architectural fault propagation vs. latency (`--low32` for the §3.1 variant) |
//! | `fig4` | Figure 4 — µarch injection, perfect cfv detection (`--latches-only` for §5.1.2) |
//! | `fig5` | Figure 5 — ReStore coverage with JRS-confidence cfv detection |
//! | `fig6` | Figure 6 — hardened (parity/ECC) pipeline + ReStore |
//! | `fig7` | Figure 7 — performance impact of false-positive rollbacks |
//! | `fig8` | Figure 8 — FIT rates with device scaling |
//! | `figs_all` | every figure in sequence (writes the EXPERIMENTS.md data) |
//!
//! All binaries accept `--points N`, `--trials N` (scale knobs) and
//! `--seed N`; defaults are sized for a single-core laptop run of
//! minutes. Campaign binaries also take `--threads N` (default: the
//! `RESTORE_THREADS` env var, then all available cores), `--cutoff K`
//! (reconvergence-cutoff stride; 0 disables) and
//! `--prune off|on|interval|audit` (dead-state pruning; `interval`
//! adds the static masking-interval map, `audit` re-simulates every
//! pruned trial and asserts the prediction); results are bit-identical
//! at every thread count and with every optimisation on or off. With
//! `--store DIR` the masking maps persist next to the trial segments
//! and are reused by later runs. This library holds the shared flag
//! parsing ([`cli`]), aggregation and table rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod sweep;

use restore_inject::{ArchCategory, ArchTrial, CfvMode, Proportion, UarchCategory, UarchTrial};

/// Latency bounds (instructions) used for the Figure 2 x-axis.
pub const FIG2_LATENCIES: [u64; 8] = [25, 50, 100, 200, 500, 1_000, 10_000, u64::MAX];

/// Checkpoint intervals (instructions) used for the Figures 4–6 x-axis.
pub const FIG46_INTERVALS: [u64; 7] = [25, 50, 100, 200, 500, 1_000, 2_000];

/// Formats a latency bound for a column header.
pub fn latency_label(l: u64) -> String {
    match l {
        u64::MAX => "inf".to_string(),
        v if v >= 1_000 => format!("{}k", v / 1_000),
        v => v.to_string(),
    }
}

/// Aggregates architectural trials into a Figure 2 table: one row per
/// category, one column per latency bound, cells in percent of all
/// trials.
pub fn arch_table(trials: &[ArchTrial], latencies: &[u64]) -> String {
    let total = trials.len().max(1) as f64;
    let mut out = String::new();
    out.push_str(&format!("{:<10}", "category"));
    for &l in latencies {
        out.push_str(&format!("{:>8}", latency_label(l)));
    }
    out.push('\n');
    for cat in ArchCategory::ALL {
        out.push_str(&format!("{:<10}", cat.label()));
        for &l in latencies {
            let n = trials.iter().filter(|t| t.classify(l) == cat).count();
            out.push_str(&format!("{:>7.1}%", 100.0 * n as f64 / total));
        }
        out.push('\n');
    }
    out
}

/// Aggregates microarchitectural trials into a Figures 4–6 table.
pub fn uarch_table(
    trials: &[UarchTrial],
    intervals: &[u64],
    cfv: CfvMode,
    hardened: bool,
) -> String {
    let total = trials.len().max(1) as f64;
    let mut out = String::new();
    out.push_str(&format!("{:<10}", "category"));
    for &i in intervals {
        out.push_str(&format!("{:>8}", latency_label(i)));
    }
    out.push('\n');
    for cat in UarchCategory::ALL {
        out.push_str(&format!("{:<10}", cat.label()));
        for &i in intervals {
            let n = trials.iter().filter(|t| t.classify(i, cfv, hardened) == cat).count();
            out.push_str(&format!("{:>7.2}%", 100.0 * n as f64 / total));
        }
        out.push('\n');
    }
    out
}

/// Summary numbers extracted from a µarch campaign at one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageSummary {
    /// Fraction of all trials that are failures.
    pub failure_fraction: f64,
    /// Fraction of failures covered by deadlock+exception+cfv symptoms.
    pub coverage_of_failures: f64,
    /// Fraction of all trials that remain uncovered failures.
    pub residual_failure_fraction: f64,
    /// 95% CI half-width on the failure fraction.
    pub ci95: f64,
}

/// Computes the headline coverage numbers at an interval.
pub fn coverage_summary(
    trials: &[UarchTrial],
    interval: u64,
    cfv: CfvMode,
    hardened: bool,
) -> CoverageSummary {
    let total = trials.len().max(1);
    let classified: Vec<UarchCategory> =
        trials.iter().map(|t| t.classify(interval, cfv, hardened)).collect();
    let failures = classified.iter().filter(|c| c.is_failure()).count();
    let covered = classified.iter().filter(|c| c.is_covered()).count();
    CoverageSummary {
        failure_fraction: failures as f64 / total as f64,
        coverage_of_failures: covered as f64 / failures.max(1) as f64,
        residual_failure_fraction: (failures - covered) as f64 / total as f64,
        ci95: Proportion::new(failures as u64, total as u64).ci95(),
    }
}

/// Indices of the Pareto-efficient points on a (gain, cost) plane —
/// maximize the first coordinate, minimize the second. A point is
/// dominated when another point is at least as good on both axes and
/// strictly better on one; duplicated points all survive (neither
/// dominates the other).
pub fn pareto_indices(points: &[(f64, f64)]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points.iter().enumerate().any(|(j, &(g, c))| {
                j != i
                    && g >= points[i].0
                    && c <= points[i].1
                    && (g > points[i].0 || c < points[i].1)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use restore_inject::EndState;
    use restore_workloads::WorkloadId;

    fn trial(exc: Option<u64>, end: EndState) -> UarchTrial {
        UarchTrial {
            workload: WorkloadId::Mcfx,
            bit: 0,
            region: "scheduler",
            lhf_protected: false,
            symptoms: restore_inject::SymptomLatencies { exception: exc, ..Default::default() },
            value_divergence: None,
            hc_mispredict: None,
            any_mispredict: None,
            sig_mismatch: None,
            dup_mismatch: None,
            extra_dcache_misses: 0,
            extra_dtlb_misses: 0,
            end,
        }
    }

    #[test]
    fn labels() {
        assert_eq!(latency_label(25), "25");
        assert_eq!(latency_label(2_000), "2k");
        assert_eq!(latency_label(u64::MAX), "inf");
    }

    #[test]
    fn uarch_table_has_all_rows_and_columns() {
        let trials =
            vec![trial(Some(10), EndState::Terminated), trial(None, EndState::MaskedClean)];
        let t = uarch_table(&trials, &FIG46_INTERVALS, CfvMode::Perfect, false);
        assert_eq!(t.lines().count(), 1 + UarchCategory::ALL.len());
        assert!(t.contains("masked"));
        assert!(t.contains("50.00%"));
    }

    #[test]
    fn pareto_frontier_keeps_only_non_dominated_points() {
        // (coverage, overhead): maximize the first, minimize the second.
        let pts = [
            (0.9, 0.10), // frontier
            (0.8, 0.05), // frontier (cheaper, less coverage)
            (0.8, 0.10), // dominated by both
            (0.9, 0.10), // duplicate of the first — both survive
            (0.5, 0.20), // dominated
        ];
        assert_eq!(pareto_indices(&pts), vec![0, 1, 3]);
        assert!(pareto_indices(&[]).is_empty());
        assert_eq!(pareto_indices(&[(0.1, 0.9)]), vec![0], "a lone point is the frontier");
    }

    #[test]
    fn coverage_summary_arithmetic() {
        let trials = vec![
            trial(Some(10), EndState::Terminated),  // covered failure
            trial(Some(900), EndState::Terminated), // uncovered at 100
            trial(None, EndState::MaskedClean),
            trial(None, EndState::MaskedClean),
        ];
        let s = coverage_summary(&trials, 100, CfvMode::Perfect, false);
        assert!((s.failure_fraction - 0.5).abs() < 1e-12);
        assert!((s.coverage_of_failures - 0.5).abs() < 1e-12);
        assert!((s.residual_failure_fraction - 0.25).abs() < 1e-12);
    }
}
