//! The detector-configuration sweep behind `restore-sweep`: grid cells
//! (re-simulated detector hardware/software variants) × post-hoc source
//! subsets × checkpoint intervals, scored on a coverage/overhead plane.
//!
//! Two kinds of knob make up a configuration:
//!
//! * **Cell knobs** change what the campaign records — JRS geometry and
//!   watchdog timeout alter the pipeline's own detectors, and the
//!   software knobs (`sig_chunk`, `dup_mask`) alter which observation
//!   latencies get written into the trial records. Each distinct cell
//!   has its own campaign digest, so a `--store` directory keys every
//!   cell's trials separately and re-sweeps start warm.
//! * **Post-hoc knobs** are free — the enabled-source subset
//!   ([`SourceSet`]) and the checkpoint interval only select among the
//!   already-recorded first-firing latencies
//!   ([`UarchTrial::detected_within`]).
//!
//! Coverage is the fraction of failures the enabled sources catch
//! within the interval; overhead folds the false-positive rollback cost
//! (the Figure 7 analytic model, immediate policy) together with the
//! software sources' dynamic instruction expansion. The frontier is
//! marked per workload and for the pooled suite by [`pareto_indices`].

use crate::pareto_indices;
use restore_inject::{CfvMode, SourceSet, UarchCampaignConfig, UarchTrial};
use restore_perf::{PerfModel, WorkloadProfile};
use restore_uarch::UarchConfig;
use restore_workloads::WorkloadId;

/// One simulated grid cell: a detector configuration that changes what
/// the campaign records, so it costs a (store-cached) campaign run.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Stable cell name for tables and JSON.
    // digest: neutral -- display label; two names over one cfg record identically
    pub name: &'static str,
    /// Campaign configuration (detector knobs folded in).
    pub cfg: UarchCampaignConfig,
    /// Score with the hardened (parity/ECC) pipeline of §5.2.2: lhf
    /// bits are recovered in hardware and leave the failure population.
    // digest: neutral -- post-hoc scoring policy over already-recorded trials
    pub hardened: bool,
    /// Post-hoc source subsets evaluated against this cell's records.
    // digest: neutral -- post-hoc subset selection reads recorded latencies only
    pub subsets: Vec<SourceSet>,
}

/// The store identity of a cell's records: exactly its campaign
/// configuration's digest. Cells differing only in post-hoc knobs
/// (`name`, `hardened`, `subsets`) share one digest and therefore one
/// (cached) campaign run.
pub fn cell_digest(cell: &SweepCell) -> u64 {
    restore_inject::uarch_campaign_digest(&cell.cfg)
}

/// The default sweep grid over a base campaign configuration: the
/// paper's detector set and its ablations, the software-only sources,
/// JRS geometry variants, a faster watchdog, and the hardened pipeline.
pub fn default_cells(base: &UarchCampaignConfig) -> Vec<SweepCell> {
    let cell = |name, detectors, uarch: UarchConfig, hardened, subsets| SweepCell {
        name,
        cfg: UarchCampaignConfig { detectors, uarch, ..base.clone() },
        hardened,
        subsets,
    };
    let paper_det = restore_inject::DetectorConfig::paper();
    let lhf_det = restore_inject::DetectorConfig::lhf();
    let hc = SourceSet::paper();
    vec![
        cell(
            "paper",
            paper_det,
            base.uarch.clone(),
            false,
            vec![
                SourceSet { watchdog: false, ..SourceSet::baseline() },
                SourceSet::baseline(),
                hc,
                SourceSet { cfv: Some(CfvMode::Perfect), ..hc },
                SourceSet { cfv: Some(CfvMode::AnyMispredict), ..hc },
            ],
        ),
        cell(
            "software",
            lhf_det,
            base.uarch.clone(),
            false,
            vec![
                SourceSet { signature: true, ..hc },
                SourceSet { dup: true, ..hc },
                SourceSet { signature: true, dup: true, ..hc },
                SourceSet {
                    exceptions: false,
                    watchdog: false,
                    cfv: None,
                    signature: true,
                    dup: true,
                },
            ],
        ),
        cell(
            "jrs-relaxed",
            paper_det,
            UarchConfig { jrs_threshold: 7, ..base.uarch.clone() },
            false,
            vec![hc],
        ),
        cell(
            "jrs-small",
            paper_det,
            UarchConfig { jrs_entries: 256, ..base.uarch.clone() },
            false,
            vec![hc],
        ),
        cell(
            "wd-fast",
            paper_det,
            UarchConfig { watchdog_cycles: 500, ..base.uarch.clone() },
            false,
            vec![SourceSet::baseline(), hc],
        ),
        cell("hardened", paper_det, base.uarch.clone(), true, vec![hc]),
    ]
}

/// One evaluated configuration on the coverage/overhead plane.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Workload scored, or `None` for the pooled suite.
    pub workload: Option<WorkloadId>,
    /// Grid cell the records came from.
    pub cell: &'static str,
    /// Enabled-source subset label ([`SourceSet::label`]).
    pub sources: String,
    /// Checkpoint interval (retired instructions).
    pub interval: u64,
    /// Failures in the (hardened-adjusted) population.
    pub failures: usize,
    /// Failures detected within the interval.
    pub covered: usize,
    /// `covered / failures` (1 when there are no failures).
    pub coverage: f64,
    /// `1 −` relative performance: false-positive rollbacks plus the
    /// software sources' dynamic instruction expansion.
    pub overhead: f64,
    /// Dedicated detector storage (bits).
    pub table_bits: u64,
    /// Extra per-checkpoint state (bits).
    pub checkpoint_bits: u64,
    /// On the Pareto frontier of its workload group.
    pub pareto: bool,
}

/// False-positive symptom count a source subset produces on the
/// fault-free profile: the cfv model is the only source that fires
/// without a fault (exceptions, watchdog, signature and duplication
/// compare against golden behaviour, so their fault-free rate is zero;
/// perfect cfv is an oracle).
fn false_positives(p: &WorkloadProfile, sel: &SourceSet) -> f64 {
    match sel.cfv {
        Some(CfvMode::HighConfidence) => p.symptom_positions.len() as f64,
        Some(CfvMode::AnyMispredict) => p.mispredicts as f64,
        _ => 0.0,
    }
}

/// Relative performance of one workload under a configuration: the
/// Figure 7 immediate-rollback model (expected 1.5-interval re-execution
/// per false positive) times the software sources' instruction-expansion
/// slowdown.
fn speedup(
    model: &PerfModel,
    p: &WorkloadProfile,
    sel: &SourceSet,
    interval: u64,
    extra_instr_frac: f64,
) -> f64 {
    let base = p.cycles as f64;
    let rollback = false_positives(p, sel) * 1.5 * interval as f64 * model.reexec_cpi(p);
    (base / (base + rollback)) / (1.0 + extra_instr_frac)
}

/// Scores one cell's trial records: every subset × interval, for each
/// workload and for the pooled suite. `pareto` is left `false`; the
/// caller marks frontiers once all cells are in
/// ([`mark_pareto_frontiers`]).
pub fn evaluate_cell(
    cell: &SweepCell,
    trials: &[UarchTrial],
    profiles: &[WorkloadProfile],
    intervals: &[u64],
) -> Vec<SweepPoint> {
    let model = PerfModel::default();
    let uarch = &cell.cfg.uarch;
    let groups: Vec<Option<WorkloadId>> =
        std::iter::once(None).chain(WorkloadId::ALL.iter().copied().map(Some)).collect();
    let mut out = Vec::new();
    for sel in &cell.subsets {
        let cost = sel.overhead(&cell.cfg.detectors, uarch.jrs_entries, uarch.jrs_max);
        for &interval in intervals {
            for &group in &groups {
                let in_group = |t: &&UarchTrial| group.is_none_or(|w| t.workload == w);
                // The hardened pipeline recovers lhf flips in hardware,
                // removing them from the failure population (§5.2.2).
                let failing: Vec<&UarchTrial> = trials
                    .iter()
                    .filter(in_group)
                    .filter(|t| t.is_failure() && !(cell.hardened && t.lhf_protected))
                    .collect();
                let covered = failing.iter().filter(|t| t.detected_within(sel, interval)).count();
                let geo: f64 = {
                    let ps: Vec<&WorkloadProfile> =
                        profiles.iter().filter(|p| group.is_none_or(|w| p.workload == w)).collect();
                    if ps.is_empty() {
                        1.0
                    } else {
                        let log_sum: f64 = ps
                            .iter()
                            .map(|p| speedup(&model, p, sel, interval, cost.extra_instr_frac).ln())
                            .sum();
                        (log_sum / ps.len() as f64).exp()
                    }
                };
                out.push(SweepPoint {
                    workload: group,
                    cell: cell.name,
                    sources: sel.label(),
                    interval,
                    failures: failing.len(),
                    covered,
                    coverage: covered as f64 / failing.len().max(1) as f64,
                    overhead: 1.0 - geo,
                    table_bits: cost.table_bits,
                    checkpoint_bits: cost.checkpoint_bits,
                    pareto: false,
                });
            }
        }
    }
    out
}

/// Marks the Pareto frontier (maximize coverage, minimize overhead)
/// within each workload group (the pooled group competes separately).
pub fn mark_pareto_frontiers(points: &mut [SweepPoint]) {
    let groups: Vec<Option<WorkloadId>> =
        std::iter::once(None).chain(WorkloadId::ALL.iter().copied().map(Some)).collect();
    for group in groups {
        let idx: Vec<usize> = (0..points.len()).filter(|&i| points[i].workload == group).collect();
        let plane: Vec<(f64, f64)> =
            idx.iter().map(|&i| (points[i].coverage, points[i].overhead)).collect();
        for k in pareto_indices(&plane) {
            points[idx[k]].pareto = true;
        }
    }
}

/// Renders the pooled-suite table: one row per configuration, frontier
/// rows marked `*`.
pub fn combined_table(points: &[SweepPoint]) -> String {
    let mut out = format!(
        "{:<2}{:<12}{:<24}{:>9}{:>10}{:>10}{:>12}{:>11}\n",
        "", "cell", "sources", "interval", "coverage", "overhead", "table-bits", "ckpt-bits"
    );
    for p in points.iter().filter(|p| p.workload.is_none()) {
        out.push_str(&format!(
            "{:<2}{:<12}{:<24}{:>9}{:>9.1}%{:>9.2}%{:>12}{:>11}\n",
            if p.pareto { "*" } else { "" },
            p.cell,
            p.sources,
            p.interval,
            100.0 * p.coverage,
            100.0 * p.overhead,
            p.table_bits,
            p.checkpoint_bits,
        ));
    }
    out
}

/// Renders the per-workload Pareto frontiers (frontier rows only — the
/// full plane is in the JSON).
pub fn frontier_table(points: &[SweepPoint]) -> String {
    let mut out = String::new();
    for w in WorkloadId::ALL {
        out.push_str(&format!("{}:\n", w.name()));
        for p in points.iter().filter(|p| p.workload == Some(w) && p.pareto) {
            out.push_str(&format!(
                "  {:<12}{:<24}{:>9}{:>9.1}%{:>9.2}%\n",
                p.cell,
                p.sources,
                p.interval,
                100.0 * p.coverage,
                100.0 * p.overhead,
            ));
        }
    }
    out
}

/// Serializes every point as a JSON array (hand-rolled — the repo takes
/// no serialization dependency; labels are `[a-z()+-]` so no escaping
/// is needed).
pub fn render_json(points: &[SweepPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"workload\":\"{}\",\"cell\":\"{}\",\"sources\":\"{}\",\"interval\":{},\
             \"failures\":{},\"covered\":{},\"coverage\":{:.6},\"overhead\":{:.6},\
             \"table_bits\":{},\"checkpoint_bits\":{},\"pareto\":{}}}{}\n",
            p.workload.map_or("combined", |w| w.name()),
            p.cell,
            p.sources,
            p.interval,
            p.failures,
            p.covered,
            p.coverage,
            p.overhead,
            p.table_bits,
            p.checkpoint_bits,
            p.pareto,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage_summary;
    use restore_inject::run_uarch_campaign;
    use restore_perf::profile_workload;

    fn smoke_base() -> UarchCampaignConfig {
        UarchCampaignConfig {
            points_per_workload: 2,
            trials_per_point: 4,
            warmup_cycles: 500,
            window_cycles: 1_500,
            drain_cycles: 1_000,
            seed: 0x60D,
            ..UarchCampaignConfig::default()
        }
    }

    fn smoke_profiles(uarch: &UarchConfig) -> Vec<WorkloadProfile> {
        WorkloadId::ALL
            .iter()
            .map(|&id| profile_workload(id, smoke_base().scale, uarch, 20_000))
            .collect()
    }

    /// The acceptance bar: the paper-default cell's `exc+wd+cfv(hc)`
    /// coverage must equal the Figure 5 (baseline) and Figure 6
    /// (hardened) classification pipeline exactly, at every interval.
    #[test]
    fn paper_default_cell_reproduces_fig5_and_fig6_coverage() {
        let base = smoke_base();
        let trials = run_uarch_campaign(&base);
        let profiles = smoke_profiles(&base.uarch);
        let cells = default_cells(&base);
        let intervals = crate::FIG46_INTERVALS;
        for (name, hardened) in [("paper", false), ("hardened", true)] {
            let cell = cells.iter().find(|c| c.name == name).unwrap();
            let points = evaluate_cell(cell, &trials, &profiles, &intervals);
            for &interval in &intervals {
                let want = coverage_summary(&trials, interval, CfvMode::HighConfidence, hardened)
                    .coverage_of_failures;
                let got = points
                    .iter()
                    .find(|p| {
                        p.workload.is_none()
                            && p.sources == SourceSet::paper().label()
                            && p.interval == interval
                    })
                    .unwrap()
                    .coverage;
                assert!(
                    (got - want).abs() < 1e-12,
                    "{name}@{interval}: sweep coverage {got} != figure coverage {want}"
                );
            }
        }
    }

    #[test]
    fn grid_meets_the_configuration_floor_and_ablations_order() {
        let base = smoke_base();
        let cells = default_cells(&base);
        let subsets: usize = cells.iter().map(|c| c.subsets.len()).sum();
        assert!(
            subsets * crate::FIG46_INTERVALS.len() >= 24,
            "default grid must evaluate at least 24 configurations per workload"
        );

        let trials = run_uarch_campaign(&base);
        let profiles = smoke_profiles(&base.uarch);
        let paper = cells.iter().find(|c| c.name == "paper").unwrap();
        let mut points = evaluate_cell(paper, &trials, &profiles, &[100]);
        let get = |points: &[SweepPoint], label: &str| -> SweepPoint {
            points.iter().find(|p| p.workload.is_none() && p.sources == label).cloned().unwrap()
        };
        // More sources never cover less, and the any-mispredict oracle
        // dominates high-confidence coverage at higher overhead.
        let exc = get(&points, "exc");
        let base_set = get(&points, "exc+wd");
        let hc = get(&points, "exc+wd+cfv(hc)");
        let any = get(&points, "exc+wd+cfv(any)");
        assert!(exc.coverage <= base_set.coverage && base_set.coverage <= hc.coverage);
        assert!(hc.coverage <= any.coverage);
        assert!(any.overhead >= hc.overhead);
        assert!(hc.table_bits > 0, "JRS confidence table is priced");
        assert_eq!(base_set.table_bits, 64, "watchdog counter only");

        mark_pareto_frontiers(&mut points);
        assert!(points.iter().any(|p| p.pareto), "some point is always non-dominated");
        let json = render_json(&points);
        assert!(json.contains("\"workload\":\"combined\""));
        assert!(json.trim_end().ends_with(']'));
    }
}
