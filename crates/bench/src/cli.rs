//! Strict, shared CLI parsing for the figure binaries.
//!
//! Every binary used to carry its own copy of `--flag value` extraction
//! built on a lenient helper that silently ignored anything it could
//! not parse — `fig4 --trials x` would run the *default* campaign and
//! happily print a table for the wrong experiment. Here the shared
//! knobs are parsed once, strictly:
//!
//! * a flag given without a value, or with an unparseable one, is an
//!   error;
//! * `--points` / `--trials` / `--size` / `--cycles` reject zero (an
//!   empty campaign is never what was asked for);
//! * `--threads 0` (auto) and `--cutoff 0` (cutoff off) stay legal —
//!   zero is meaningful there;
//! * unknown `--flags` are rejected, so typos fail instead of running
//!   the default.
//!
//! Errors print the binary's usage line and exit with status 2 via
//! [`or_exit`].

use restore_inject::{
    arch_campaign_digest, uarch_campaign_digest, ArchCampaignConfig, ArchTrial, PruneMode,
    TrialCache, UarchCampaignConfig, UarchTrial,
};
use restore_workloads::Scale;
use std::fmt;
use std::path::PathBuf;

/// A CLI parse failure (the message names the offending flag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Unwraps a parse result or prints the error plus `usage` to stderr
/// and exits with status 2.
pub fn or_exit<T>(r: Result<T, CliError>, usage: &str) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!("usage: {usage}");
        std::process::exit(2);
    })
}

/// `true` if the bare flag is present.
pub fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The raw value following `name`, if the flag is present. A flag at
/// the end of the line or followed by another `--flag` is an error.
pub fn value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, CliError> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v)),
            _ => Err(CliError(format!("{name} requires a value"))),
        },
    }
}

/// Parses `name`'s value as a u64; unparseable input is an error, not a
/// silent default.
pub fn parsed_u64(args: &[String], name: &str) -> Result<Option<u64>, CliError> {
    value(args, name)?
        .map(|v| {
            v.parse().map_err(|_| CliError(format!("{name}: `{v}` is not an unsigned integer")))
        })
        .transpose()
}

/// Like [`parsed_u64`] but additionally rejects zero — for knobs where
/// zero would silently produce an empty experiment.
pub fn nonzero_u64(args: &[String], name: &str) -> Result<Option<u64>, CliError> {
    match parsed_u64(args, name)? {
        Some(0) => Err(CliError(format!("{name} must be at least 1"))),
        other => Ok(other),
    }
}

/// Parses `--prune off|on|interval|audit`.
pub fn prune_mode(args: &[String]) -> Result<Option<PruneMode>, CliError> {
    value(args, "--prune")?
        .map(|v| match v {
            "off" => Ok(PruneMode::Off),
            "on" => Ok(PruneMode::On),
            "interval" => Ok(PruneMode::Interval),
            "audit" => Ok(PruneMode::Audit),
            _ => Err(CliError(format!("--prune: `{v}` is not one of off|on|interval|audit"))),
        })
        .transpose()
}

/// Errors on any `--flag` not in `known` (a typo would otherwise run
/// the default experiment). Values (non-`--` tokens) pass through.
pub fn reject_unknown(args: &[String], known: &[&str]) -> Result<(), CliError> {
    for a in args.iter().skip(1) {
        if a.starts_with("--") && !known.contains(&a.as_str()) {
            return Err(CliError(format!("unknown flag {a}")));
        }
    }
    Ok(())
}

/// Parses `--store PATH` — the content-addressed trial store directory.
pub fn store_path(args: &[String]) -> Result<Option<PathBuf>, CliError> {
    Ok(value(args, "--store")?.map(PathBuf::from))
}

/// Opens the `--store` trial store (if requested) under the µarch
/// campaign digest of `cfg`. Must run *after* every campaign flag has
/// been applied — the digest is a function of the final configuration.
pub fn open_uarch_store(
    cfg: &UarchCampaignConfig,
    args: &[String],
) -> Result<Option<TrialCache<UarchTrial>>, CliError> {
    store_path(args)?
        .map(|dir| {
            TrialCache::open(&dir, "all", uarch_campaign_digest(cfg))
                .map_err(|e| CliError(format!("--store {}: {e}", dir.display())))
        })
        .transpose()
}

/// Opens the `--store` trial store (if requested) under the arch
/// campaign digest of `cfg`. Must run *after* every campaign flag has
/// been applied — the digest is a function of the final configuration.
pub fn open_arch_store(
    cfg: &ArchCampaignConfig,
    args: &[String],
) -> Result<Option<TrialCache<ArchTrial>>, CliError> {
    store_path(args)?
        .map(|dir| {
            TrialCache::open(&dir, "all", arch_campaign_digest(cfg))
                .map_err(|e| CliError(format!("--store {}: {e}", dir.display())))
        })
        .transpose()
}

/// Parses `--dup-mask`'s value as the protected-register bitmask —
/// decimal or `0x`-prefixed hex (masks read naturally in hex).
pub fn dup_mask(args: &[String]) -> Result<Option<u32>, CliError> {
    value(args, "--dup-mask")?
        .map(|v| {
            let parsed = match v.strip_prefix("0x") {
                Some(hex) => u32::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.map_err(|_| CliError(format!("--dup-mask: `{v}` is not a 32-bit mask")))
        })
        .transpose()
}

/// The knobs every µarch campaign binary shares.
pub const UARCH_FLAGS: [&str; 10] = [
    "--points",
    "--trials",
    "--seed",
    "--threads",
    "--cutoff",
    "--prune",
    "--ckpt-stride",
    "--store",
    "--sig-chunk",
    "--dup-mask",
];

/// [`UARCH_FLAGS`] plus a binary's own extras, for [`reject_unknown`].
pub fn uarch_flags_plus(extra: &[&'static str]) -> Vec<&'static str> {
    let mut known = UARCH_FLAGS.to_vec();
    known.extend_from_slice(extra);
    known
}

/// Applies the shared µarch campaign knobs to `cfg`:
/// `--points N` / `--trials N` (nonzero), `--seed S`, `--threads N`
/// (0 = auto), `--cutoff K` (0 = off), `--prune off|on|interval|audit`,
/// `--ckpt-stride K` (0 = serial producer, no checkpoint library),
/// `--sig-chunk N` (0 = signature checking off) and `--dup-mask M`
/// (0 = duplication off) for the software-only detector sources.
/// `--store DIR` doubles as the masking-map directory, so sharded runs
/// against a shared store build each workload's map once per shard set.
pub fn apply_uarch_flags(cfg: &mut UarchCampaignConfig, args: &[String]) -> Result<(), CliError> {
    if let Some(p) = nonzero_u64(args, "--points")? {
        cfg.points_per_workload = p as usize;
    }
    if let Some(t) = nonzero_u64(args, "--trials")? {
        cfg.trials_per_point = t as usize;
    }
    if let Some(s) = parsed_u64(args, "--seed")? {
        cfg.seed = s;
    }
    if let Some(n) = parsed_u64(args, "--threads")? {
        cfg.threads = n as usize;
    }
    if let Some(k) = parsed_u64(args, "--cutoff")? {
        cfg.cutoff_stride = k;
    }
    if let Some(m) = prune_mode(args)? {
        cfg.prune = m;
    }
    if let Some(k) = parsed_u64(args, "--ckpt-stride")? {
        cfg.ckpt_stride = k;
    }
    if let Some(c) = parsed_u64(args, "--sig-chunk")? {
        cfg.detectors.sig_chunk = c;
    }
    if let Some(m) = dup_mask(args)? {
        cfg.detectors.dup_mask = m;
    }
    cfg.map_dir = store_path(args)?;
    Ok(())
}

/// Applies the architectural (Figure 2) campaign knobs to `cfg`:
/// `--trials N` / `--size N` (nonzero), `--seed S`, `--threads N`
/// (0 = auto), `--cutoff K` (0 = off), `--prune off|on|interval|audit`,
/// `--ckpt-stride K` (0 = serial producer), `--sig-chunk N` /
/// `--dup-mask M` (software detector sources, 0 = off), `--low32`.
/// `--store DIR` doubles as the masking-map directory. Pass
/// `trials_flag` so `figs_all` can route its `--arch-trials` here
/// without colliding with the µarch knob.
pub fn apply_arch_flags(
    cfg: &mut ArchCampaignConfig,
    args: &[String],
    trials_flag: &str,
) -> Result<(), CliError> {
    if let Some(t) = nonzero_u64(args, trials_flag)? {
        cfg.trials_per_workload = t as usize;
    }
    if let Some(s) = parsed_u64(args, "--seed")? {
        cfg.seed = s;
    }
    if let Some(n) = nonzero_u64(args, "--size")? {
        cfg.scale = Scale { size: n as usize, ..cfg.scale };
    }
    if let Some(n) = parsed_u64(args, "--threads")? {
        cfg.threads = n as usize;
    }
    if let Some(k) = parsed_u64(args, "--cutoff")? {
        cfg.cutoff_stride = k;
    }
    if let Some(m) = prune_mode(args)? {
        cfg.prune = m;
    }
    if let Some(k) = parsed_u64(args, "--ckpt-stride")? {
        cfg.ckpt_stride = k;
    }
    if let Some(c) = parsed_u64(args, "--sig-chunk")? {
        cfg.detectors.sig_chunk = c;
    }
    if let Some(m) = dup_mask(args)? {
        cfg.detectors.dup_mask = m;
    }
    cfg.map_dir = store_path(args)?;
    cfg.low32 = flag(args, "--low32");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        std::iter::once("bin").chain(s.iter().copied()).map(String::from).collect()
    }

    #[test]
    fn strict_values() {
        let a = args(&["--points", "12", "--latches-only"]);
        assert_eq!(parsed_u64(&a, "--points"), Ok(Some(12)));
        assert_eq!(parsed_u64(&a, "--trials"), Ok(None));
        assert!(flag(&a, "--latches-only"));
        assert!(!flag(&a, "--low32"));

        let bad = args(&["--points", "x"]);
        assert!(parsed_u64(&bad, "--points").is_err(), "unparseable must not be ignored");
        let missing = args(&["--points"]);
        assert!(parsed_u64(&missing, "--points").is_err());
        let eaten = args(&["--points", "--trials", "4"]);
        assert!(parsed_u64(&eaten, "--points").is_err(), "a flag is not a value");
    }

    #[test]
    fn zero_rejection_is_selective() {
        let mut cfg = UarchCampaignConfig::default();
        assert!(apply_uarch_flags(&mut cfg, &args(&["--points", "0"])).is_err());
        assert!(apply_uarch_flags(&mut cfg, &args(&["--trials", "0"])).is_err());
        // Zero means something for these three.
        apply_uarch_flags(
            &mut cfg,
            &args(&["--threads", "0", "--cutoff", "0", "--ckpt-stride", "0"]),
        )
        .unwrap();
        assert_eq!(cfg.threads, 0);
        assert_eq!(cfg.cutoff_stride, 0);
        assert_eq!(cfg.ckpt_stride, 0, "--ckpt-stride 0 must disable the library");
        // But a malformed stride is still an error, not a silent default.
        assert!(apply_uarch_flags(&mut cfg, &args(&["--ckpt-stride", "x"])).is_err());
        assert!(apply_uarch_flags(&mut cfg, &args(&["--ckpt-stride"])).is_err());
    }

    #[test]
    fn uarch_flags_apply() {
        let mut cfg = UarchCampaignConfig::default();
        let a = args(&[
            "--points",
            "3",
            "--trials",
            "7",
            "--seed",
            "9",
            "--threads",
            "2",
            "--cutoff",
            "100",
            "--prune",
            "audit",
            "--ckpt-stride",
            "1500",
        ]);
        apply_uarch_flags(&mut cfg, &a).unwrap();
        assert_eq!(cfg.points_per_workload, 3);
        assert_eq!(cfg.trials_per_point, 7);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.cutoff_stride, 100);
        assert_eq!(cfg.prune, PruneMode::Audit);
        assert_eq!(cfg.ckpt_stride, 1_500);
        assert_eq!(cfg.map_dir, None, "no --store means no map directory");
        assert!(apply_uarch_flags(&mut cfg, &args(&["--prune", "maybe"])).is_err());

        let a = args(&["--prune", "interval", "--store", "/tmp/trials"]);
        apply_uarch_flags(&mut cfg, &a).unwrap();
        assert_eq!(cfg.prune, PruneMode::Interval);
        assert_eq!(
            cfg.map_dir,
            Some(PathBuf::from("/tmp/trials")),
            "--store doubles as the masking-map directory"
        );
    }

    #[test]
    fn arch_flags_apply() {
        let mut cfg = ArchCampaignConfig::default();
        let a = args(&[
            "--trials",
            "5",
            "--size",
            "64",
            "--low32",
            "--seed",
            "1",
            "--cutoff",
            "0",
            "--ckpt-stride",
            "0",
        ]);
        apply_arch_flags(&mut cfg, &a, "--trials").unwrap();
        assert_eq!(cfg.trials_per_workload, 5);
        assert_eq!(cfg.scale.size, 64);
        assert_eq!(cfg.seed, 1);
        assert_eq!(cfg.cutoff_stride, 0, "--cutoff 0 must disable the arch cutoff");
        assert_eq!(cfg.ckpt_stride, 0, "--ckpt-stride 0 must disable the arch library");
        assert!(cfg.low32);
        assert_eq!(cfg.prune, PruneMode::Off, "arch pruning defaults off");
        assert!(apply_arch_flags(&mut cfg, &args(&["--size", "0"]), "--trials").is_err());
        assert!(apply_arch_flags(&mut cfg, &args(&["--ckpt-stride", "-3"]), "--trials").is_err());

        let a = args(&["--prune", "interval", "--store", "/tmp/trials"]);
        apply_arch_flags(&mut cfg, &a, "--trials").unwrap();
        assert_eq!(cfg.prune, PruneMode::Interval);
        assert_eq!(cfg.map_dir, Some(PathBuf::from("/tmp/trials")));
        assert!(apply_arch_flags(&mut cfg, &args(&["--prune", "maybe"]), "--trials").is_err());
    }

    #[test]
    fn detector_flags_apply_to_both_campaigns() {
        let mut cfg = UarchCampaignConfig::default();
        let a = args(&["--sig-chunk", "32", "--dup-mask", "0x1ff"]);
        apply_uarch_flags(&mut cfg, &a).unwrap();
        assert_eq!(cfg.detectors.sig_chunk, 32);
        assert_eq!(cfg.detectors.dup_mask, 0x1FF, "--dup-mask accepts hex");

        let mut cfg = ArchCampaignConfig::default();
        apply_arch_flags(&mut cfg, &args(&["--sig-chunk", "0", "--dup-mask", "511"]), "--trials")
            .unwrap();
        assert_eq!(cfg.detectors.sig_chunk, 0, "--sig-chunk 0 disables the source");
        assert_eq!(cfg.detectors.dup_mask, 511, "--dup-mask accepts decimal");

        assert!(dup_mask(&args(&["--dup-mask", "0xzz"])).is_err());
        assert!(dup_mask(&args(&["--dup-mask", "4294967296"])).is_err(), "mask is 32-bit");
        assert!(UARCH_FLAGS.contains(&"--sig-chunk") && UARCH_FLAGS.contains(&"--dup-mask"));
    }

    #[test]
    fn store_flag_parses_and_is_strict() {
        let a = args(&["--store", "/tmp/trials"]);
        assert_eq!(store_path(&a).unwrap(), Some(PathBuf::from("/tmp/trials")));
        assert_eq!(store_path(&args(&["--points", "3"])).unwrap(), None);
        assert!(store_path(&args(&["--store"])).is_err(), "--store needs a path");
        assert!(store_path(&args(&["--store", "--resume"])).is_err(), "a flag is not a path");
        assert!(UARCH_FLAGS.contains(&"--store"), "every campaign binary takes --store");
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let known = uarch_flags_plus(&["--latches-only"]);
        assert!(reject_unknown(&args(&["--points", "3", "--latches-only"]), &known).is_ok());
        assert!(reject_unknown(&args(&["--latchesonly"]), &known).is_err());
        assert!(reject_unknown(&args(&["--prnue", "on"]), &known).is_err());
    }
}
