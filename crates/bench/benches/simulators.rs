//! Criterion microbenchmarks of the simulation substrates: these bound
//! how large a fault-injection campaign a given time budget affords.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use restore_core::{Checkpoint, CheckpointStore, RestoreConfig, RestoreController};
use restore_isa::decode;
use restore_uarch::{Pipeline, Stop, UarchConfig};
use restore_workloads::{Scale, WorkloadId};

fn bench_arch_simulator(c: &mut Criterion) {
    let program = WorkloadId::Mcfx.build(Scale::campaign());
    let mut g = c.benchmark_group("arch-simulator");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("step-10k-instructions", |b| {
        b.iter_batched(
            || restore_arch::Cpu::new(&program),
            |mut cpu| {
                cpu.run(10_000).unwrap();
                cpu
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let program = WorkloadId::Mcfx.build(Scale::campaign());
    let mut warm = Pipeline::new(UarchConfig::default(), &program);
    for _ in 0..2_000 {
        warm.cycle();
    }
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("cycle-1k", |b| {
        b.iter_batched(
            || warm.clone(),
            |mut p| {
                for _ in 0..1_000 {
                    if p.status() != Stop::Running {
                        break;
                    }
                    p.cycle();
                }
                p
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("clone", |b| b.iter(|| warm.clone()));
    g.bench_function("state-hash", |b| {
        b.iter_batched(|| warm.clone(), |mut p| p.state_hash(), BatchSize::SmallInput);
    });
    g.bench_function("flip-bit", |b| {
        b.iter_batched(
            || warm.clone(),
            |mut p| {
                p.flip_bit(12_345);
                p
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let program = WorkloadId::Gccx.build(Scale::campaign());
    let words = program.text.clone();
    let mut g = c.benchmark_group("isa");
    g.throughput(Throughput::Elements(words.len() as u64));
    g.bench_function("decode-text-segment", |b| {
        b.iter(|| {
            let mut ok = 0usize;
            for &w in &words {
                if decode(w).is_ok() {
                    ok += 1;
                }
            }
            ok
        });
    });
    g.finish();
}

fn bench_checkpointing(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpointing");
    let ck = Checkpoint { regs: [7; 32], pc: 0x1_0000, retired: 0 };
    g.bench_function("take-checkpoint", |b| {
        b.iter_batched(
            || CheckpointStore::new(ck.clone()),
            |mut s| {
                for i in 0..100u64 {
                    s.record_store((0x1000 + 8 * (i % 64), 8, i));
                    if i % 25 == 0 {
                        s.take(Checkpoint { regs: [i; 32], pc: 0x1_0000, retired: i });
                    }
                }
                s
            },
            BatchSize::SmallInput,
        );
    });
    let program = WorkloadId::Mcfx.build(Scale::campaign());
    let mut warm = Pipeline::new(UarchConfig::default(), &program);
    for _ in 0..2_000 {
        warm.cycle();
    }
    let regs = warm.arch_regs();
    let pc = warm.retired_next_pc();
    g.bench_function("pipeline-restore-checkpoint", |b| {
        b.iter_batched(
            || warm.clone(),
            |mut p| {
                p.restore_checkpoint(&regs, pc);
                p
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_restore_controller(c: &mut Criterion) {
    let program = WorkloadId::Vortexx.build(Scale::campaign());
    let mut g = c.benchmark_group("restore-controller");
    g.throughput(Throughput::Elements(5_000));
    g.bench_function("run-5k-cycles", |b| {
        b.iter_batched(
            || {
                RestoreController::new(
                    Pipeline::new(UarchConfig::default(), &program),
                    RestoreConfig::default(),
                )
            },
            |mut c| {
                c.run(5_000);
                c
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_campaign_trial(c: &mut Criterion) {
    use restore_inject::{run_uarch_workload, UarchCampaignConfig};
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("uarch-trial-batch", |b| {
        b.iter(|| {
            let cfg = UarchCampaignConfig {
                points_per_workload: 1,
                trials_per_point: 4,
                window_cycles: 2_000,
                drain_cycles: 1_000,
                seed: 1,
                threads: 1,
                ..UarchCampaignConfig::default()
            };
            run_uarch_workload(&cfg, WorkloadId::Mcfx)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_arch_simulator,
    bench_pipeline,
    bench_decode,
    bench_checkpointing,
    bench_restore_controller,
    bench_campaign_trial
);
criterion_main!(benches);
