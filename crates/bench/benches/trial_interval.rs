//! Static masking-interval pruning payoff: the fig4-shaped µarch
//! campaign with the dynamic liveness oracle (`prune on`) vs. the
//! static map in front of it (`prune interval`).
//!
//! Both modes prune the same dead-bit trials; what `interval` changes
//! is *how*. The oracle prices one shadow run (a full window + drain
//! replay) at every injection point that draws a dead bit; the map is
//! computed once per workload from a single instrumented golden run,
//! memoized process-wide, and answers those draws with an interval
//! lookup — so points whose dead draws it covers never pay a shadow
//! run at all. The win therefore scales with points, not trials.
//!
//! Both modes compute the identical trial vector — the equivalence
//! tests (`crates/inject/tests/interval_equivalence.rs`) enforce that,
//! and this bench re-asserts it against the unpruned baseline before
//! timing, along with the shadow-run accounting identity
//! `shadow_runs(interval) + shadow_runs_avoided(interval) ==
//! shadow_runs(on)`.
//!
//! Set `CRITERION_JSON=/path/file.json` to append machine-readable
//! results (see `BENCH_interval.json` at the repo root for the recorded
//! baseline; `BENCH_prune.json` holds the oracle-only numbers this
//! improves on).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use restore_inject::{run_uarch_campaign_with_stats, PruneMode, UarchCampaignConfig};

fn cfg(prune: PruneMode) -> UarchCampaignConfig {
    // Same shape as `trial_prune.rs` so the two benches' numbers
    // compare directly: default window/warmup/drain/cutoff, reduced
    // plan, paper-shaped trials-per-point amortisation.
    UarchCampaignConfig {
        points_per_workload: 2,
        trials_per_point: 24,
        seed: 11,
        threads: 1,
        prune,
        ..UarchCampaignConfig::default()
    }
}

fn bench_trial_interval(c: &mut Criterion) {
    let (baseline, off_stats) = run_uarch_campaign_with_stats(&cfg(PruneMode::Off));
    let (_, on_stats) = run_uarch_campaign_with_stats(&cfg(PruneMode::On));
    let mut g = c.benchmark_group("trial-interval");
    g.sample_size(10);
    g.throughput(Throughput::Elements(off_stats.trials));
    for (label, mode) in [("on", PruneMode::On), ("interval", PruneMode::Interval)] {
        let cfg = cfg(mode);
        let (trials, stats) = run_uarch_campaign_with_stats(&cfg);
        assert_eq!(trials, baseline, "prune-{label} changed trial results");
        assert_eq!(
            stats.cycles_simulated + stats.cycles_saved + stats.cycles_pruned,
            off_stats.cycles_simulated + off_stats.cycles_saved,
            "prune-{label}: every planned window cycle must be accounted for"
        );
        assert_eq!(
            stats.shadow_runs + stats.shadow_runs_avoided,
            on_stats.shadow_runs,
            "prune-{label}: every dead-draw point either pays or avoids its shadow run"
        );
        eprintln!(
            "prune {label:>8}: {:>5.1}% of trials pruned ({:>5.1}% by the map) | \
             shadow runs {} (avoided {}) | {stats}",
            100.0 * stats.trials_pruned as f64 / stats.trials.max(1) as f64,
            100.0 * stats.trials_interval_pruned as f64 / stats.trials.max(1) as f64,
            stats.shadow_runs,
            stats.shadow_runs_avoided,
        );
        g.bench_function(format!("prune-{label}"), |b| {
            b.iter(|| run_uarch_campaign_with_stats(&cfg).0);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trial_interval);
criterion_main!(benches);
