//! Warm-cache payoff: replaying the default Figure 4 campaign from a
//! fully-populated content-addressed trial store vs. simulating it.
//!
//! `cold-record` runs the campaign against an empty store (recording
//! every trial, cold checkpoint library each iteration) — the price of
//! the first run. `warm-replay-threads-N` runs the identical campaign
//! against the populated store: every trial is a store hit, so the run
//! decodes records instead of simulating windows, and thread count is
//! irrelevant because nothing executes.
//!
//! Proof obligations re-asserted before timing:
//! * the warm trial vector is bit-identical to the recording run's;
//! * the warm run simulates **zero** window cycles, with the full
//!   planned window accounted in `cycles_cached`
//!   (`simulated + saved + pruned + cached = planned`).
//!
//! Set `CRITERION_JSON=/path/file.json` for machine-readable results
//! (see `BENCH_cache.json` at the repo root for the recorded baseline —
//! the warm replay is well over an order of magnitude faster than the
//! cold run it replaces).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use restore_inject::{
    run_uarch_campaign_io, uarch_campaign_digest, Shard, TrialCache, UarchCampaignConfig,
    UarchTrial,
};
use restore_snapshot::clear_library_cache;
use std::path::PathBuf;

/// The default Figure 4 campaign — the workload the store is for.
fn cfg(threads: usize) -> UarchCampaignConfig {
    UarchCampaignConfig { threads, ..UarchCampaignConfig::default() }
}

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("restore-bench-cache-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_campaign_cache(c: &mut Criterion) {
    let cfg4 = cfg(4);
    let digest = uarch_campaign_digest(&cfg4);

    // Record once, then prove the warm replay exact and free.
    let dir = tmp("record");
    let cache = TrialCache::<UarchTrial>::open(&dir, "all", digest).unwrap();
    clear_library_cache();
    let t0 = std::time::Instant::now();
    let (baseline, cold_stats) = run_uarch_campaign_io(&cfg4, Some(&cache), Shard::ALL);
    let cold_wall = t0.elapsed().as_secs_f64();

    clear_library_cache();
    let t0 = std::time::Instant::now();
    let (warm, warm_stats) = run_uarch_campaign_io(&cfg4, Some(&cache), Shard::ALL);
    let warm_wall = t0.elapsed().as_secs_f64();
    assert_eq!(warm, baseline, "warm replay changed trial results");
    assert_eq!(warm_stats.cycles_simulated, 0, "fully-warm run must simulate nothing");
    assert_eq!(warm_stats.trials_cached as usize, cache.cached_for_config());
    assert_eq!(
        warm_stats.cycles_cached,
        cold_stats.cycles_simulated + cold_stats.cycles_saved + cold_stats.cycles_pruned,
        "every planned window cycle must be accounted as cached"
    );
    eprintln!(
        "campaign-cache: {} trials; cold {cold_wall:.2}s -> warm {warm_wall:.3}s ({:.0}x)",
        cold_stats.trials,
        cold_wall / warm_wall.max(1e-9)
    );

    let mut g = c.benchmark_group("campaign-cache");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cold_stats.trials));

    // The first run's price: simulate everything, record everything,
    // into a fresh store with a cold checkpoint library.
    g.bench_function("cold-record", |b| {
        let mut round = 0u32;
        b.iter(|| {
            round += 1;
            let dir = tmp(&format!("cold-{round}"));
            let fresh = TrialCache::<UarchTrial>::open(&dir, "all", digest).unwrap();
            clear_library_cache();
            let out = run_uarch_campaign_io(&cfg4, Some(&fresh), Shard::ALL).0;
            std::fs::remove_dir_all(&dir).unwrap();
            out
        });
    });

    // Every later run's price: pure store replay. Thread count is moot
    // when nothing simulates — both rows should time alike.
    for threads in [1usize, 4] {
        let cfgt = cfg(threads);
        g.bench_function(format!("warm-replay-threads-{threads}"), |b| {
            b.iter(|| {
                clear_library_cache();
                run_uarch_campaign_io(&cfgt, Some(&cache), Shard::ALL).0
            });
        });
    }
    g.finish();
    std::fs::remove_dir_all(&dir).unwrap();
}

criterion_group!(benches, bench_campaign_cache);
criterion_main!(benches);
