//! Criterion wrappers around the figure regenerators, one per paper
//! artifact, at reduced scale: `cargo bench` demonstrably reproduces
//! every table/figure pipeline and reports how long each takes.

use criterion::{criterion_group, criterion_main, Criterion};
use restore_core::fit::{figure8_sizes, FitScaling};
use restore_inject::{
    run_arch_campaign, run_uarch_campaign, ArchCampaignConfig, CfvMode, InjectionTarget,
    UarchCampaignConfig,
};
use restore_perf::{profile_workload, PerfModel, Policy, FIGURE7_INTERVALS};
use restore_uarch::UarchConfig;
use restore_workloads::{Scale, WorkloadId};

fn small_uarch_cfg(seed: u64) -> UarchCampaignConfig {
    UarchCampaignConfig {
        points_per_workload: 1,
        trials_per_point: 4,
        window_cycles: 2_000,
        drain_cycles: 1_000,
        warmup_cycles: 1_000,
        seed,
        ..UarchCampaignConfig::default()
    }
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig2-arch-campaign", |b| {
        b.iter(|| {
            let cfg = ArchCampaignConfig {
                trials_per_workload: 4,
                window: 60_000,
                ..ArchCampaignConfig::default()
            };
            let trials = run_arch_campaign(&cfg);
            trials.iter().filter(|t| t.classify(100).label() == "exception").count()
        });
    });
    g.finish();
}

fn bench_fig4_5_6(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig4-uarch-campaign", |b| {
        b.iter(|| {
            let trials = run_uarch_campaign(&small_uarch_cfg(2));
            trials.iter().filter(|t| t.classify(100, CfvMode::Perfect, false).is_covered()).count()
        });
    });
    g.bench_function("fig4-latches-only", |b| {
        b.iter(|| {
            let cfg =
                UarchCampaignConfig { target: InjectionTarget::LatchesOnly, ..small_uarch_cfg(3) };
            run_uarch_campaign(&cfg).len()
        });
    });
    g.bench_function("fig5-fig6-classification", |b| {
        let trials = run_uarch_campaign(&small_uarch_cfg(4));
        b.iter(|| {
            let mut covered = 0;
            for interval in [25u64, 50, 100, 200, 500, 1000, 2000] {
                for t in &trials {
                    if t.classify(interval, CfvMode::HighConfidence, true).is_covered() {
                        covered += 1;
                    }
                }
            }
            covered
        });
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig7-profile-and-model", |b| {
        b.iter(|| {
            let p = profile_workload(
                WorkloadId::Gzipx,
                Scale::campaign(),
                &UarchConfig::default(),
                20_000,
            );
            let m = PerfModel::default();
            FIGURE7_INTERVALS.iter().map(|&i| m.speedup(&p, i, Policy::Immediate)).sum::<f64>()
        });
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.bench_function("fig8-fit-series", |b| {
        b.iter(|| FitScaling::paper().series(&figure8_sizes()));
    });
    g.finish();
}

criterion_group!(benches, bench_fig2, bench_fig4_5_6, bench_fig7, bench_fig8);
criterion_main!(benches);
