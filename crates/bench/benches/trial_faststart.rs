//! Trial fast-start payoff: producing each injection point from the
//! golden checkpoint library (O(stride + window) per trial) vs. the
//! historical serial golden walk (O(point coordinate)).
//!
//! The shape that matters is *deep* injection points: a long warm-up
//! before a modest observation window, so per-point setup dominates.
//! With the serial producer, the single golden walker re-simulates the
//! whole prefix; with the library, each point clones the nearest
//! checkpoint at-or-before its cycle and the worker finishes a residual
//! sweep bounded by the stride.
//!
//! Three proof obligations are re-asserted before timing:
//! * trial vectors bit-identical with the library on or off;
//! * every planned window cycle accounted for
//!   (`simulated + saved + pruned` invariant);
//! * every produced unit classified as a checkpoint hit or miss.
//!
//! A warm-library scaling table (threads 1/2/4/8) is printed to stderr;
//! `EXPERIMENTS.md` records the numbers. Set
//! `CRITERION_JSON=/path/file.json` for machine-readable results (see
//! `BENCH_faststart.json` at the repo root for the recorded baseline).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use restore_inject::{run_uarch_campaign_with_stats, UarchCampaignConfig};
use restore_snapshot::clear_library_cache;

/// Deep-point campaign: warm-up is twice the window, so the serial
/// producer's golden walk is the dominant cost.
fn cfg(threads: usize, ckpt_stride: u64) -> UarchCampaignConfig {
    UarchCampaignConfig {
        points_per_workload: 8,
        trials_per_point: 2,
        warmup_cycles: 2_000,
        window_cycles: 1_000,
        drain_cycles: 500,
        seed: 23,
        threads,
        ckpt_stride,
        ..UarchCampaignConfig::default()
    }
}

const STRIDE: u64 = 2_000;

fn bench_trial_faststart(c: &mut Criterion) {
    let (baseline, off_stats) = run_uarch_campaign_with_stats(&cfg(4, 0));

    let mut g = c.benchmark_group("trial-faststart");
    g.sample_size(10);
    g.throughput(Throughput::Elements(off_stats.trials));

    for (label, stride) in [("serial", 0u64), ("library", STRIDE)] {
        let cfg = cfg(4, stride);
        let (trials, stats) = run_uarch_campaign_with_stats(&cfg);
        assert_eq!(trials, baseline, "faststart-{label} changed trial results");
        assert_eq!(
            stats.cycles_simulated + stats.cycles_saved + stats.cycles_pruned,
            off_stats.cycles_simulated + off_stats.cycles_saved + off_stats.cycles_pruned,
            "faststart-{label}: every planned window cycle must be accounted for"
        );
        if stride > 0 {
            assert_eq!(
                stats.checkpoint_hits + stats.checkpoint_misses,
                stats.units,
                "faststart-{label}: every unit must be classified hit or miss"
            );
        }
        eprintln!("faststart {label:>7}: {stats}");
        g.bench_function(format!("produce-{label}"), |b| {
            b.iter(|| run_uarch_campaign_with_stats(&cfg).0);
        });
    }

    // Warm-library scaling: after the first run above, every key's
    // library is fully captured, so these measure pure warm production.
    eprintln!("warm-library thread scaling (points materialize from warm checkpoints):");
    for threads in [1usize, 2, 4, 8] {
        let cfg = cfg(threads, STRIDE);
        let t0 = std::time::Instant::now();
        let (trials, stats) = run_uarch_campaign_with_stats(&cfg);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(trials, baseline, "thread count must not change results");
        eprintln!(
            "  threads {threads}: wall {wall:.2}s; produce {:.2}s; {} warm / {} cold; \
             {} warm-up cycles skipped",
            stats.produce_secs,
            stats.checkpoint_hits,
            stats.checkpoint_misses,
            stats.warmup_cycles_saved,
        );
        g.bench_function(format!("warm-threads-{threads}"), |b| {
            b.iter(|| run_uarch_campaign_with_stats(&cfg).0);
        });
    }

    // Cold production for contrast: drop every memoized library so one
    // run pays the full golden sweep plus captures.
    g.bench_function("cold-library", |b| {
        b.iter(|| {
            clear_library_cache();
            run_uarch_campaign_with_stats(&cfg(4, STRIDE)).0
        });
    });
    g.finish();
}

criterion_group!(benches, bench_trial_faststart);
criterion_main!(benches);
