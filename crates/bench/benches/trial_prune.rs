//! Dead-state pruning payoff: the default fig4-shaped µarch campaign
//! (10 000-cycle windows, default reconvergence cutoff of 250) with the
//! liveness oracle off vs. on.
//!
//! Pruning composes with the cutoff: the cutoff shortens masked trials
//! to their reconvergence point, while the oracle removes dead-bit
//! trials entirely — no pipeline clone, no simulated cycles — at the
//! price of one shadow run per injection point that draws a dead bit.
//! The trial count per point therefore matters: the paper-scale ~48
//! trials per point amortise the shadow run across every dead draw at
//! that point; this bench uses a reduced plan with the same shape.
//!
//! Both modes compute the identical trial vector — the equivalence
//! tests (`crates/inject/tests/prune_equivalence.rs`) enforce that, and
//! this bench re-asserts it against the unpruned baseline before
//! timing.
//!
//! Set `CRITERION_JSON=/path/file.json` to append machine-readable
//! results (see `BENCH_prune.json` at the repo root for the recorded
//! baseline and the measured wall-clock reduction).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use restore_inject::{run_uarch_campaign_with_stats, PruneMode, UarchCampaignConfig};

fn cfg(prune: PruneMode) -> UarchCampaignConfig {
    // Default window/warmup/drain/cutoff — the acceptance-relevant
    // shape — with a reduced plan, and enough trials per point to
    // amortise the per-point golden and shadow runs as a paper-scale
    // campaign would.
    UarchCampaignConfig {
        points_per_workload: 2,
        trials_per_point: 24,
        seed: 11,
        threads: 1,
        prune,
        ..UarchCampaignConfig::default()
    }
}

fn bench_trial_prune(c: &mut Criterion) {
    let (baseline, off_stats) = run_uarch_campaign_with_stats(&cfg(PruneMode::Off));
    let mut g = c.benchmark_group("trial-prune");
    g.sample_size(10);
    g.throughput(Throughput::Elements(off_stats.trials));
    for (label, mode) in [("off", PruneMode::Off), ("on", PruneMode::On)] {
        let cfg = cfg(mode);
        let (trials, stats) = run_uarch_campaign_with_stats(&cfg);
        assert_eq!(trials, baseline, "prune-{label} changed trial results");
        assert_eq!(
            stats.cycles_simulated + stats.cycles_saved + stats.cycles_pruned,
            off_stats.cycles_simulated + off_stats.cycles_saved,
            "prune-{label}: every planned window cycle must be accounted for"
        );
        eprintln!(
            "prune {label:>3}: {:>5.1}% of trials pruned | {stats}",
            100.0 * stats.trials_pruned as f64 / stats.trials.max(1) as f64,
        );
        g.bench_function(format!("prune-{label}"), |b| {
            b.iter(|| run_uarch_campaign_with_stats(&cfg).0);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trial_prune);
criterion_main!(benches);
