//! Thread-scaling of the parallel campaign engine: the same fig4-shaped
//! µarch campaign (and a small arch campaign) at 1, 2, 4 and 8 workers.
//!
//! Throughput is reported in trials/second, so the elements/sec column
//! is directly the campaign throughput at that thread count. Determinism
//! tests (`crates/inject/tests/determinism.rs`) guarantee every row
//! computes the identical trial vector — this bench measures only how
//! fast each thread count gets there.
//!
//! Set `CRITERION_JSON=/path/file.json` to append machine-readable
//! results (see `BENCH_campaign.json` at the repo root for the recorded
//! baseline).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use restore_inject::{
    run_arch_campaign_with_stats, run_uarch_campaign_with_stats, ArchCampaignConfig,
    UarchCampaignConfig,
};
use restore_workloads::Scale;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn uarch_cfg(threads: usize) -> UarchCampaignConfig {
    UarchCampaignConfig {
        points_per_workload: 2,
        trials_per_point: 6,
        warmup_cycles: 1_000,
        window_cycles: 2_500,
        drain_cycles: 1_500,
        seed: 11,
        threads,
        ..UarchCampaignConfig::default()
    }
}

fn bench_uarch_scaling(c: &mut Criterion) {
    let expected = run_uarch_campaign_with_stats(&uarch_cfg(1)).1.trials;
    let mut g = c.benchmark_group("uarch-campaign-scaling");
    g.sample_size(10);
    g.throughput(Throughput::Elements(expected));
    for threads in THREAD_COUNTS {
        let cfg = uarch_cfg(threads);
        g.bench_function(format!("threads-{threads}"), |b| {
            b.iter(|| run_uarch_campaign_with_stats(&cfg).0);
        });
    }
    g.finish();
}

fn bench_arch_scaling(c: &mut Criterion) {
    let base = ArchCampaignConfig {
        scale: Scale::smoke(),
        trials_per_workload: 30,
        window: 100_000,
        seed: 11,
        ..ArchCampaignConfig::default()
    };
    let expected =
        run_arch_campaign_with_stats(&ArchCampaignConfig { threads: 1, ..base.clone() }).1.trials;
    let mut g = c.benchmark_group("arch-campaign-scaling");
    g.sample_size(10);
    g.throughput(Throughput::Elements(expected));
    for threads in THREAD_COUNTS {
        let cfg = ArchCampaignConfig { threads, ..base.clone() };
        g.bench_function(format!("threads-{threads}"), |b| {
            b.iter(|| run_arch_campaign_with_stats(&cfg).0);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_uarch_scaling, bench_arch_scaling);
criterion_main!(benches);
