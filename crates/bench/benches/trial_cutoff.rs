//! Reconvergence-cutoff payoff: the default fig4-shaped µarch campaign
//! (10 000-cycle windows) at cutoff strides 0 (exhaustive), 64, 250
//! (the default) and 1000.
//!
//! Every stride computes the identical trial vector — the equivalence
//! tests (`crates/inject/tests/cutoff_equivalence.rs`) enforce that, and
//! this bench re-asserts it against the stride-0 baseline before
//! timing. What changes is how many window cycles each trial actually
//! simulates: most flips are masked and the faulty machine's
//! fingerprint rejoins the golden run's within a few hundred cycles, so
//! small strides cut most of the 10k window. Very small strides pay the
//! fingerprint cost too often; very large ones detect reconvergence
//! late. The stats line printed per stride shows the trade.
//!
//! Set `CRITERION_JSON=/path/file.json` to append machine-readable
//! results (see `BENCH_trial.json` at the repo root for the recorded
//! baseline).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use restore_inject::{run_uarch_campaign_with_stats, UarchCampaignConfig};

const STRIDES: [u64; 4] = [0, 64, 250, 1000];

fn cfg(cutoff_stride: u64) -> UarchCampaignConfig {
    // Default window/warmup/drain — the acceptance-relevant shape — with
    // a reduced plan so the stride-0 reference stays affordable.
    UarchCampaignConfig {
        points_per_workload: 2,
        trials_per_point: 6,
        seed: 11,
        threads: 1,
        cutoff_stride,
        ..UarchCampaignConfig::default()
    }
}

fn bench_trial_cutoff(c: &mut Criterion) {
    let (baseline, base_stats) = run_uarch_campaign_with_stats(&cfg(0));
    let mut g = c.benchmark_group("trial-cutoff");
    g.sample_size(10);
    g.throughput(Throughput::Elements(base_stats.trials));
    for stride in STRIDES {
        let cfg = cfg(stride);
        let (trials, stats) = run_uarch_campaign_with_stats(&cfg);
        assert_eq!(trials, baseline, "stride {stride} changed trial results");
        assert_eq!(
            stats.cycles_simulated + stats.cycles_saved,
            base_stats.cycles_simulated,
            "stride {stride}: simulated + saved must equal the exhaustive run's cycles"
        );
        eprintln!(
            "stride {stride:>4}: {:>5.1}% of window cycles skipped | {}",
            100.0 * stats.cycles_saved_fraction(),
            stats.summary()
        );
        g.bench_function(format!("stride-{stride}"), |b| {
            b.iter(|| run_uarch_campaign_with_stats(&cfg).0);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trial_cutoff);
criterion_main!(benches);
