//! The drift fixture must keep failing — it is the scanner's canary.
//! If these assertions break, either the fixture was "fixed" (undo
//! that) or the scanner lost the ability to see the defect class.

use std::path::PathBuf;

use restore_audit::{analyze_determinism_dirs, analyze_digest_dirs, analyze_dirs};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/drift/src")
}

#[test]
fn unvisited_field_names_struct_field_and_location() {
    let analysis = analyze_dirs(&[fixture_root()]).expect("fixture dir readable");
    let f = analysis
        .errors()
        .find(|f| f.kind == "unvisited-field" && f.type_name == "DriftWidget")
        .expect("fixture must trip the unvisited-field check");
    assert_eq!(f.field, "dropped_tag");
    assert!(
        f.file.ends_with("fixtures/drift/src/lib.rs"),
        "diagnostic must carry the file: {}",
        f.file.display()
    );
    assert!(f.line > 0, "diagnostic must carry a line");
    // The rendered diagnostic reads like a compiler error: struct, field,
    // and file:line all present.
    let rendered = f.to_string();
    assert!(rendered.contains("DriftWidget.dropped_tag"), "{rendered}");
    assert!(rendered.contains(&format!("lib.rs:{}", f.line)), "{rendered}");
}

#[test]
fn unvisited_snapshot_fingerprint_is_reported() {
    // The snapshot-shaped canary: a `fn visit` walk (not `visit_state`)
    // that drops the capture fingerprint must be caught the same way.
    let analysis = analyze_dirs(&[fixture_root()]).expect("fixture dir readable");
    let f = analysis
        .errors()
        .find(|f| f.kind == "unvisited-field" && f.type_name == "StaleMeta")
        .expect("fixture must trip the unvisited-field check on StaleMeta");
    assert_eq!(f.field, "capture_fingerprint");
}

#[test]
fn unvisited_trial_key_config_digest_is_reported() {
    // The store-shaped canary: a trial key whose walk drops the
    // campaign-config digest would let records from different campaigns
    // collide; the scanner must see the hole.
    let analysis = analyze_dirs(&[fixture_root()]).expect("fixture dir readable");
    let f = analysis
        .errors()
        .find(|f| f.kind == "unvisited-field" && f.type_name == "DriftKey")
        .expect("fixture must trip the unvisited-field check on DriftKey");
    assert_eq!(f.field, "config");
}

#[test]
fn exempted_field_is_not_reported() {
    let analysis = analyze_dirs(&[fixture_root()]).expect("fixture dir readable");
    assert!(
        !analysis.errors().any(|f| f.field == "scratch"),
        "the exempted scratch field must not be a finding",
    );
    assert!(
        !analysis.errors().any(|f| f.field == "serves"),
        "the exempted serve counter must not be a finding",
    );
}

#[test]
fn width_overflow_is_reported() {
    let analysis = analyze_dirs(&[fixture_root()]).expect("fixture dir readable");
    let f = analysis
        .errors()
        .find(|f| f.kind == "width-unsound")
        .expect("fixture must trip the width check");
    assert_eq!(f.type_name, "WidthBuster");
    assert_eq!(f.field, "tag");
    assert!(f.detail.contains('9'), "{}", f.detail);
}

#[test]
fn fixture_defect_count_is_exact() {
    // Drift in either direction is a failure: a new accidental defect in
    // the fixture or a scanner that stopped seeing one.
    let analysis = analyze_dirs(&[fixture_root()]).expect("fixture dir readable");
    let kinds: Vec<&str> = analysis.errors().map(|f| f.kind).collect();
    // DriftWidget.dropped_tag, StaleMeta.capture_fingerprint and
    // DriftKey.config.
    assert_eq!(kinds.iter().filter(|k| **k == "unvisited-field").count(), 3, "{kinds:?}");
    // Width 9 on a `word8` breaks two rules at once: the method's 8-bit
    // cap and the u8 field's capacity.
    assert_eq!(kinds.iter().filter(|k| **k == "width-unsound").count(), 2, "{kinds:?}");
    assert_eq!(kinds.len(), 5, "{kinds:?}");
}

#[test]
fn digest_canaries_are_detected_exactly() {
    // `digests.rs` carries the unfolded-field canary, a reasonless
    // neutral comment, and a lying exemption; the digest pass must see
    // all four defects and nothing else — and the state scanner above
    // must keep seeing exactly its five, since no canary has a walk.
    let analysis = analyze_digest_dirs(&[fixture_root()]).expect("fixture dir readable");
    let findings: Vec<(&str, String)> =
        analysis.errors().map(|f| (f.kind, format!("{}.{}", f.type_name, f.field))).collect();
    assert!(findings.contains(&("unfolded-field", "CanaryCfg.forgotten".into())), "{findings:?}");
    assert!(findings.contains(&("unfolded-field", "CanaryCfg.threads".into())), "{findings:?}");
    assert!(findings.contains(&("neutral-but-folded", "LyingCfg.stride".into())), "{findings:?}");
    assert_eq!(
        findings.iter().filter(|(k, _)| *k == "malformed-digest-exemption").count(),
        1,
        "{findings:?}"
    );
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn determinism_canaries_are_detected_exactly() {
    let analysis = analyze_determinism_dirs(&[fixture_root()]).expect("fixture dir readable");
    let kinds: Vec<&str> = analysis.errors().map(|f| f.kind).collect();
    for (kind, count) in [
        ("hash-order", 1),
        ("wall-clock", 2), // Instant in the soup, SystemTime under the reasonless allow
        ("entropy-rng", 1),
        ("rng-seed-literal", 1),
        ("dangling-determinism-allow", 1),
        ("malformed-determinism-exemption", 1),
    ] {
        assert_eq!(kinds.iter().filter(|k| **k == kind).count(), count, "{kind}: {kinds:?}");
    }
    assert_eq!(kinds.len(), 7, "{kinds:?}");
    // The keyed-lookup twin of the snapshot cache is correctly allowed.
    assert_eq!(analysis.allows_honored, 1);
}
