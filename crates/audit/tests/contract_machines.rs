//! Acceptance: the runtime contract battery must hold around full
//! `Pipeline` and `Cpu` walks at the default configuration.

use restore_arch::Cpu;
use restore_audit::check_contract;
use restore_uarch::{Pipeline, UarchConfig};
use restore_workloads::{Scale, WorkloadId};

fn program() -> restore_isa::Program {
    WorkloadId::Vortexx.build(Scale { size: 32, seed: 7 })
}

#[test]
fn default_pipeline_satisfies_the_visitor_contract() {
    let p = program();
    let mut pipe = Pipeline::new(UarchConfig::default(), &p);
    for _ in 0..1_000 {
        pipe.cycle();
    }
    let report = check_contract(&mut pipe, 48);
    assert!(
        report.is_ok(),
        "pipeline contract violations:\n{}",
        report.violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n"),
    );
    assert_eq!(report.total_bits, pipe.catalog().total_bits);
    assert!(report.regions > 4);
    assert!(report.flips_checked >= 32);
}

#[test]
fn fresh_pipeline_also_satisfies_the_contract() {
    // An un-warmed machine exercises the all-slots-empty occupancy path.
    let p = program();
    let mut pipe = Pipeline::new(UarchConfig::default(), &p);
    let report = check_contract(&mut pipe, 16);
    assert!(report.is_ok(), "{:#?}", report.violations);
}

#[test]
fn arch_cpu_satisfies_the_visitor_contract() {
    let p = program();
    let mut cpu = Cpu::new(&p);
    for _ in 0..500 {
        if cpu.is_halted() || cpu.step().is_err() {
            break;
        }
    }
    let report = check_contract(&mut cpu, 48);
    assert!(
        report.is_ok(),
        "cpu contract violations:\n{}",
        report.violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n"),
    );
    // 31 visitable registers plus the PC.
    assert_eq!(report.total_bits, 31 * 64 + 64);
    assert_eq!(report.regions, 2);
}

#[test]
fn contract_bit_count_matches_catalog_and_counter() {
    let p = program();
    let mut pipe = Pipeline::new(UarchConfig::default(), &p);
    let mut counter = restore_uarch::state::BitCounter::default();
    restore_uarch::state::FaultState::visit_state(&mut pipe, &mut counter);
    let report = check_contract(&mut pipe, 0);
    assert_eq!(report.total_bits, counter.bits);
    assert_eq!(report.total_bits, pipe.catalog().total_bits);
}
