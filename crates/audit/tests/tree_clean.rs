//! The real simulator tree must scan clean: every field of every walked
//! type is either visited or carries an explicit, reasoned exemption.

use std::path::PathBuf;

use restore_audit::analyze_dirs;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn scan_roots() -> [PathBuf; 4] {
    [
        repo_root().join("crates/uarch/src"),
        repo_root().join("crates/arch/src"),
        repo_root().join("crates/snapshot/src"),
        repo_root().join("crates/store/src"),
    ]
}

#[test]
fn simulator_sources_scan_clean() {
    let analysis = analyze_dirs(&scan_roots()).expect("simulator sources readable");
    let errors: Vec<String> = analysis.errors().map(ToString::to_string).collect();
    assert!(errors.is_empty(), "state-coverage findings on the live tree:\n{}", errors.join("\n"),);
    // Sanity: the scanner actually saw the machines, not an empty dir.
    assert!(analysis.files_scanned >= 6, "only {} files scanned", analysis.files_scanned);
    let walked: Vec<&str> = analysis.walks.iter().map(|w| w.type_name.as_str()).collect();
    let expected = [
        "Pipeline",
        "Cpu",
        "CircQ",
        "RobEntry",
        "RegFile",
        "SnapshotMeta",
        "TrialKey",
        "TrialCost",
    ];
    for expected in expected {
        assert!(walked.contains(&expected), "no walk found for {expected}: {walked:?}");
    }
}

#[test]
fn every_exemption_on_the_tree_carries_a_reason() {
    let analysis = analyze_dirs(&scan_roots()).expect("simulator sources readable");
    let exempted: Vec<(String, String, String)> = analysis
        .structs
        .iter()
        .flat_map(|s| {
            s.fields
                .iter()
                .filter_map(|f| f.exempt.clone().map(|r| (s.name.clone(), f.name.clone(), r)))
        })
        .collect();
    // The walked machines rely on exemptions; there must be a healthy
    // number, and the scanner's grammar guarantees each has a reason.
    assert!(exempted.len() >= 10, "expected the tree's known exemptions, found {exempted:?}");
    for (s, f, reason) in &exempted {
        assert!(!reason.trim().is_empty(), "empty reason on {s}.{f}");
    }
    // The checkpoint library's serve counter is deliberately outside the
    // captured-state walk: restoring it would claim another run's
    // history. Keep the exemption (and its reason) pinned here so a
    // future "cleanup" cannot silently fold it into the fingerprint.
    assert!(
        exempted.iter().any(|(s, f, r)| s == "SnapshotMeta" && f == "serves" && !r.is_empty()),
        "SnapshotMeta.serves must stay an explicit, reasoned exemption: {exempted:?}"
    );
}
