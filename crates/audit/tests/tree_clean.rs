//! The real simulator tree must scan clean: every field of every walked
//! type is either visited or carries an explicit, reasoned exemption,
//! every digest-reachable config field is folded or digest-exempt, and
//! no banned nondeterministic construct survives unexempted.

use std::path::PathBuf;

use restore_audit::{analyze_determinism_dirs, analyze_digest_dirs, analyze_dirs};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn scan_roots() -> [PathBuf; 4] {
    [
        repo_root().join("crates/uarch/src"),
        repo_root().join("crates/arch/src"),
        repo_root().join("crates/snapshot/src"),
        repo_root().join("crates/store/src"),
    ]
}

#[test]
fn simulator_sources_scan_clean() {
    let analysis = analyze_dirs(&scan_roots()).expect("simulator sources readable");
    let errors: Vec<String> = analysis.errors().map(ToString::to_string).collect();
    assert!(errors.is_empty(), "state-coverage findings on the live tree:\n{}", errors.join("\n"),);
    // Sanity: the scanner actually saw the machines, not an empty dir.
    assert!(analysis.files_scanned >= 6, "only {} files scanned", analysis.files_scanned);
    let walked: Vec<&str> = analysis.walks.iter().map(|w| w.type_name.as_str()).collect();
    let expected = [
        "Pipeline",
        "Cpu",
        "CircQ",
        "RobEntry",
        "RegFile",
        "SnapshotMeta",
        "TrialKey",
        "TrialCost",
    ];
    for expected in expected {
        assert!(walked.contains(&expected), "no walk found for {expected}: {walked:?}");
    }
}

#[test]
fn every_exemption_on_the_tree_carries_a_reason() {
    let analysis = analyze_dirs(&scan_roots()).expect("simulator sources readable");
    let exempted: Vec<(String, String, String)> = analysis
        .structs
        .iter()
        .flat_map(|s| {
            s.fields
                .iter()
                .filter_map(|f| f.exempt.clone().map(|r| (s.name.clone(), f.name.clone(), r)))
        })
        .collect();
    // The walked machines rely on exemptions; there must be a healthy
    // number, and the scanner's grammar guarantees each has a reason.
    assert!(exempted.len() >= 10, "expected the tree's known exemptions, found {exempted:?}");
    for (s, f, reason) in &exempted {
        assert!(!reason.trim().is_empty(), "empty reason on {s}.{f}");
    }
    // The checkpoint library's serve counter is deliberately outside the
    // captured-state walk: restoring it would claim another run's
    // history. Keep the exemption (and its reason) pinned here so a
    // future "cleanup" cannot silently fold it into the fingerprint.
    assert!(
        exempted.iter().any(|(s, f, r)| s == "SnapshotMeta" && f == "serves" && !r.is_empty()),
        "SnapshotMeta.serves must stay an explicit, reasoned exemption: {exempted:?}"
    );
}

fn digest_roots() -> [PathBuf; 3] {
    [
        repo_root().join("crates/core/src"),
        repo_root().join("crates/inject/src"),
        repo_root().join("crates/bench/src"),
    ]
}

#[test]
fn digest_coverage_scans_clean() {
    let analysis = analyze_digest_dirs(&digest_roots()).expect("digest sources readable");
    let errors: Vec<String> = analysis.errors().map(ToString::to_string).collect();
    assert!(errors.is_empty(), "digest-coverage findings on the live tree:\n{}", errors.join("\n"));
    // Sanity: the pass saw the real digest surface, not an empty dir.
    for root in ["uarch_campaign_digest", "arch_campaign_digest", "cell_digest", "config_digest"] {
        assert!(
            analysis.digest_fns.iter().any(|f| f == root),
            "digest root {root} not found: {:?}",
            analysis.digest_fns
        );
    }
    for (name, shaped, neutral) in [
        ("UarchCampaignConfig", 6, 9),
        ("ArchCampaignConfig", 4, 7),
        ("DetectorConfig", 2, 0),
        ("SweepCell", 1, 3),
    ] {
        let s = analysis
            .structs
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} not reachable: {:?}", analysis.structs));
        assert_eq!(s.shaped.len(), shaped, "{name} shaped: {:?}", s.shaped);
        assert_eq!(s.neutral.len(), neutral, "{name} neutral: {:?}", s.neutral);
    }
}

#[test]
fn determinism_lint_scans_clean() {
    let roots = [
        repo_root().join("crates/inject/src"),
        repo_root().join("crates/bench/src"),
        repo_root().join("crates/store/src"),
        repo_root().join("crates/snapshot/src"),
        repo_root().join("crates/maskmap/src"),
        repo_root().join("crates/perf/src"),
        repo_root().join("crates/core/src"),
    ];
    let analysis = analyze_determinism_dirs(&roots).expect("campaign sources readable");
    let errors: Vec<String> = analysis.errors().map(ToString::to_string).collect();
    assert!(errors.is_empty(), "determinism findings on the live tree:\n{}", errors.join("\n"));
    // The known keyed-lookup caches and stderr progress timers must stay
    // explicitly exempted — if an exemption disappears the count drops
    // and this pin asks whether the construct or the comment went away.
    assert_eq!(analysis.allows_honored, 4, "expected the tree's 4 reasoned allows");
    assert!(analysis.files_scanned >= 30, "only {} files scanned", analysis.files_scanned);
}
