//! Randomized agreement between the three independent views of a
//! machine's bit space: the `BitCounter` total, the `StateCatalog`
//! built by `RangeRecorder`, and the `ContractVisitor` trace — plus the
//! fingerprint walk's stability under catalog construction. If any walk
//! skipped or double-counted a field for some configuration shape, the
//! three totals would disagree for that shape.

use proptest::prelude::*;
use restore_audit::contract::{ContractVisitor, TraceEvent};
use restore_uarch::state::{BitCounter, FaultState};
use restore_uarch::{Pipeline, UarchConfig};
use restore_workloads::{Scale, WorkloadId};

fn pipeline(cfg: UarchConfig, warm: u64) -> Pipeline {
    let program = WorkloadId::Vortexx.build(Scale { size: 24, seed: 3 });
    let mut p = Pipeline::new(cfg, &program);
    for _ in 0..warm {
        p.cycle();
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For a randomized pipeline shape: BitCounter, the catalog, and the
    /// contract trace must report the identical bit total, and the
    /// fingerprint must be unchanged by running the counting walks.
    #[test]
    fn bit_count_agrees_across_all_walks(
        fetch_queue in 2usize..16,
        sched_entries in 2usize..24,
        rob_entries in 4usize..48,
        extra_phys in 0usize..64,
        ldq_entries in 2usize..12,
        stq_entries in 2usize..12,
        bob_entries in 1usize..8,
        warm in 0u64..800,
    ) {
        let cfg = UarchConfig {
            fetch_queue,
            sched_entries,
            rob_entries,
            // The renamer needs one free physical register per
            // architectural one; keep the pool comfortably above that.
            phys_regs: 40 + extra_phys,
            ldq_entries,
            stq_entries,
            bob_entries,
            ..UarchConfig::default()
        };
        let mut p = pipeline(cfg, warm);
        let fp_before = p.fingerprint();

        let mut counter = BitCounter::default();
        p.visit_state(&mut counter);

        let catalog = p.catalog();

        let mut contract = ContractVisitor::new();
        p.visit_state(&mut contract);
        let trace_bits: u64 = contract
            .trace
            .iter()
            .map(|e| match e {
                TraceEvent::Word { width, .. } => u64::from(*width),
                _ => 0,
            })
            .sum();

        prop_assert_eq!(counter.bits, catalog.total_bits);
        prop_assert_eq!(counter.bits, contract.total_bits);
        prop_assert_eq!(counter.bits, trace_bits);
        prop_assert!(contract.violations.is_empty(), "{:#?}", contract.violations);
        prop_assert!(contract.ended_live());

        // None of the counting walks may perturb the machine.
        prop_assert_eq!(p.fingerprint(), fp_before);
    }
}
