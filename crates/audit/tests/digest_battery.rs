//! The per-field digest perturbation battery against the real campaign
//! configs, pinned to the historical digest constants, plus the bridge
//! between the two independent views of digest soundness: the static
//! scanner's shaped/neutral classification of the live sources must
//! agree field-for-field with the runtime battery's declarations, on
//! arbitrary base configurations.

use std::collections::BTreeSet;
use std::path::PathBuf;

use proptest::prelude::*;
use restore_audit::analyze_digest_dirs;
use restore_audit::battery::{arch_battery, uarch_battery, ARCH_FIELDS, UARCH_FIELDS};
use restore_core::{PINNED_ARCH_DEFAULT_DIGEST, PINNED_UARCH_DEFAULT_DIGEST};
use restore_inject::{ArchCampaignConfig, UarchCampaignConfig};
use restore_workloads::Scale;

fn digest_roots() -> [PathBuf; 3] {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    [root.join("crates/core/src"), root.join("crates/inject/src"), root.join("crates/bench/src")]
}

/// The historical default-config digests. Every record in every warm
/// store directory is filed under these values; if this test fails the
/// change did not just break a test, it orphaned every existing store.
#[test]
fn historical_default_digests_are_pinned() {
    let u = uarch_battery(&UarchCampaignConfig::default());
    let a = arch_battery(&ArchCampaignConfig::default());
    assert_eq!(u.base_digest, PINNED_UARCH_DEFAULT_DIGEST, "uarch default digest moved");
    assert_eq!(a.base_digest, PINNED_ARCH_DEFAULT_DIGEST, "arch default digest moved");
}

#[test]
fn batteries_pass_on_default_configs() {
    for r in [
        uarch_battery(&UarchCampaignConfig::default()),
        arch_battery(&ArchCampaignConfig::default()),
    ] {
        assert!(r.is_clean(), "{}: {:?}", r.type_name, r.failures);
        assert_eq!(
            r.shaped_fields.len() + r.neutral_fields.len(),
            if r.type_name == "UarchCampaignConfig" {
                UARCH_FIELDS.len()
            } else {
                ARCH_FIELDS.len()
            },
            "every declared field classified"
        );
    }
}

/// Static scanner and runtime battery are two independent derivations
/// of the same fact (which fields shape the store key): one reads the
/// source, one perturbs values. They must agree exactly — a field the
/// scanner calls shaped but the battery calls neutral (or vice versa)
/// means one of the two views is lying about the cache contract.
#[test]
fn static_classification_agrees_with_runtime_battery() {
    let analysis = analyze_digest_dirs(&digest_roots()).expect("digest sources readable");
    assert!(analysis.is_clean(), "{:?}", analysis.findings);
    for (name, report) in [
        ("UarchCampaignConfig", uarch_battery(&UarchCampaignConfig::default())),
        ("ArchCampaignConfig", arch_battery(&ArchCampaignConfig::default())),
    ] {
        let st = analysis
            .structs
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} not digest-reachable"));
        let static_shaped: BTreeSet<&str> = st.shaped.iter().map(String::as_str).collect();
        let static_neutral: BTreeSet<&str> = st.neutral.iter().map(String::as_str).collect();
        let runtime_shaped: BTreeSet<&str> = report.shaped_fields.iter().copied().collect();
        let runtime_neutral: BTreeSet<&str> = report.neutral_fields.iter().copied().collect();
        assert_eq!(static_shaped, runtime_shaped, "{name}: shaped sets disagree");
        assert_eq!(static_neutral, runtime_neutral, "{name}: neutral sets disagree");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The shaped-iff-rekeys contract must hold from ANY base point of
    /// the config space, not just the defaults — a fold that collides
    /// for particular values (e.g. a field XORed against another) would
    /// pass the default-config battery and fail here.
    #[test]
    fn uarch_battery_holds_from_any_base(
        (size, data_seed) in (1usize..512, 0u64..1_000_000),
        (points, trials) in (1usize..64, 1usize..64),
        (warmup, window, drain) in (0u64..10_000, 1u64..50_000, 0u64..5_000),
        seed in 0u64..1_000_000,
        threads in 0usize..8,
        (cutoff, ckpt) in (0u64..2_000, 0u64..2_000),
        (sig_chunk, dup_mask) in (0u64..128, 0u32..0x200),
    ) {
        let base = UarchCampaignConfig {
            scale: Scale { size, seed: data_seed },
            points_per_workload: points,
            trials_per_point: trials,
            warmup_cycles: warmup,
            window_cycles: window,
            drain_cycles: drain,
            seed,
            threads,
            cutoff_stride: cutoff,
            ckpt_stride: ckpt,
            detectors: restore_inject::DetectorConfig { sig_chunk, dup_mask },
            ..UarchCampaignConfig::default()
        };
        let r = uarch_battery(&base);
        prop_assert!(r.is_clean(), "{:?}", r.failures);
    }

    #[test]
    fn arch_battery_holds_from_any_base(
        (size, data_seed) in (1usize..512, 0u64..1_000_000),
        (trials, window) in (1usize..256, 1u64..1_000_000),
        seed in 0u64..1_000_000,
        low32 in any::<bool>(),
        threads in 0usize..8,
        (cutoff, ckpt) in (0u64..2_000, 0u64..2_000),
        (sig_chunk, dup_mask) in (0u64..128, 0u32..0x200),
    ) {
        let base = ArchCampaignConfig {
            scale: Scale { size, seed: data_seed },
            trials_per_workload: trials,
            window,
            seed,
            low32,
            threads,
            cutoff_stride: cutoff,
            ckpt_stride: ckpt,
            detectors: restore_inject::DetectorConfig { sig_chunk, dup_mask },
            ..ArchCampaignConfig::default()
        };
        let r = arch_battery(&base);
        prop_assert!(r.is_clean(), "{:?}", r.failures);
    }
}
