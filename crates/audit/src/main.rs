//! `restore-audit` CLI.
//!
//! ```text
//! restore-audit [--check] [--digests] [--determinism] [--census]
//!               [--contract] [--json] [--root DIR]
//! ```
//!
//! * `--check` (default): run the static field-coverage scanner over
//!   `crates/uarch/src`, `crates/arch/src`, `crates/snapshot/src`,
//!   `crates/store/src`, `crates/maskmap/src`, `crates/core/src` and
//!   `crates/inject/src`; exit 1 on any finding.
//! * `--digests`: run the static digest-coverage scanner over the
//!   crates that define campaign digests (`core`, `inject`, `bench`)
//!   plus the per-field runtime perturbation battery; exit 1 if any
//!   config field is neither folded nor exempted, any exemption is
//!   malformed or lying, or any perturbation breaks the
//!   shaped-iff-rekeys contract.
//! * `--determinism`: run the nondeterminism lint over the campaign,
//!   bench, store, snapshot, maskmap and perf crate roots; exit 1 on
//!   any unexempted banned construct.
//! * `--contract`: run the runtime invariant battery against a warmed
//!   default-config pipeline and the architectural CPU; exit 1 on any
//!   violation.
//! * `--census`: print the per-region bit census of both machines.
//! * `--json`: machine-readable output for `--check`/`--digests`/
//!   `--determinism`/`--census`.
//! * `--root DIR`: repository root to scan (defaults to the workspace
//!   this binary was built from).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use restore_audit::battery::default_batteries;
use restore_audit::contract::check_contract;
use restore_audit::scanner::{Finding, Severity};
use restore_audit::{
    analyze_determinism_dirs, analyze_digest_dirs, analyze_dirs, cpu_census, pipeline_census,
};
use restore_uarch::{Pipeline, UarchConfig};
use restore_workloads::{Scale, WorkloadId};

struct Options {
    check: bool,
    digests: bool,
    determinism: bool,
    census: bool,
    contract: bool,
    json: bool,
    root: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: restore-audit [--check] [--digests] [--determinism] [--census] [--contract] \
         [--json] [--root DIR]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut opts = Options {
        check: false,
        digests: false,
        determinism: false,
        census: false,
        contract: false,
        json: false,
        root: default_root,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => opts.check = true,
            "--digests" => opts.digests = true,
            "--determinism" => opts.determinism = true,
            "--census" => opts.census = true,
            "--contract" => opts.contract = true,
            "--json" => opts.json = true,
            "--root" => match args.next() {
                Some(d) => opts.root = PathBuf::from(d),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if !opts.check && !opts.digests && !opts.determinism && !opts.census && !opts.contract {
        opts.check = true;
    }
    opts
}

fn run_check(opts: &Options) -> bool {
    let roots = [
        opts.root.join("crates/uarch/src"),
        opts.root.join("crates/arch/src"),
        opts.root.join("crates/snapshot/src"),
        opts.root.join("crates/store/src"),
        opts.root.join("crates/maskmap/src"),
        // The detector plugin layer and the trial monitors that drive
        // it: DetectorSet firing state and the per-trial observation
        // records are visit-bearing state too.
        opts.root.join("crates/core/src"),
        opts.root.join("crates/inject/src"),
    ];
    let analysis = match analyze_dirs(&roots) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("restore-audit: cannot scan {}: {e}", opts.root.display());
            return false;
        }
    };
    if opts.json {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in analysis.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"kind\":\"{}\",\"type\":\"{}\",\"field\":\"{}\",\
                 \"file\":\"{}\",\"line\":{}}}",
                match f.severity {
                    Severity::Error => "error",
                    Severity::Note => "note",
                },
                f.kind,
                f.type_name,
                f.field,
                f.file.display(),
                f.line,
            ));
        }
        out.push_str(&format!(
            "],\"files_scanned\":{},\"structs\":{},\"walks\":{},\"clean\":{}}}",
            analysis.files_scanned,
            analysis.structs.len(),
            analysis.walks.len(),
            analysis.is_clean(),
        ));
        println!("{out}");
    } else {
        for f in &analysis.findings {
            println!("{f}");
        }
        let errors = analysis.errors().count();
        println!(
            "restore-audit: scanned {} files, {} structs, {} walk bodies: {}",
            analysis.files_scanned,
            analysis.structs.len(),
            analysis.walks.len(),
            if errors == 0 { "coverage clean".to_string() } else { format!("{errors} error(s)") },
        );
    }
    analysis.is_clean()
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"severity\":\"{}\",\"kind\":\"{}\",\"type\":\"{}\",\"field\":\"{}\",\
         \"file\":\"{}\",\"line\":{}}}",
        match f.severity {
            Severity::Error => "error",
            Severity::Note => "note",
        },
        f.kind,
        f.type_name,
        f.field,
        f.file.display(),
        f.line,
    )
}

fn run_digests(opts: &Options) -> bool {
    // Only these crates define digest roots: the builder in `core`, the
    // campaign digests in `inject`, the sweep-cell digest in `bench`.
    let roots = [
        opts.root.join("crates/core/src"),
        opts.root.join("crates/inject/src"),
        opts.root.join("crates/bench/src"),
    ];
    let analysis = match analyze_digest_dirs(&roots) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("restore-audit: cannot scan {}: {e}", opts.root.display());
            return false;
        }
    };
    let batteries = default_batteries();
    let battery_ok = batteries.iter().all(restore_audit::BatteryReport::is_clean);
    if opts.json {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in analysis.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&finding_json(f));
        }
        out.push_str("],\"structs\":[");
        for (i, s) in analysis.structs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"shaped\":{},\"neutral\":{}}}",
                s.name,
                s.shaped.len(),
                s.neutral.len(),
            ));
        }
        out.push_str("],\"battery\":[");
        for (i, b) in batteries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"type\":\"{}\",\"base_digest\":\"{:#018x}\",\"checked\":{},\
                 \"failures\":{}}}",
                b.type_name,
                b.base_digest,
                b.checked,
                b.failures.len(),
            ));
        }
        out.push_str(&format!(
            "],\"files_scanned\":{},\"digest_fns\":{},\"clean\":{}}}",
            analysis.files_scanned,
            analysis.digest_fns.len(),
            analysis.is_clean() && battery_ok,
        ));
        println!("{out}");
    } else {
        for f in &analysis.findings {
            println!("{f}");
        }
        for b in &batteries {
            for fail in &b.failures {
                println!("error[battery]: {fail}");
            }
            println!(
                "digest-battery {}: base {:#018x}, {} perturbations ({} shaped, {} neutral \
                 fields): {}",
                b.type_name,
                b.base_digest,
                b.checked,
                b.shaped_fields.len(),
                b.neutral_fields.len(),
                if b.is_clean() { "contract holds" } else { "VIOLATIONS" },
            );
        }
        let errors = analysis.errors().count();
        println!(
            "restore-audit: scanned {} files, {} digest fns, {} reachable structs: {}",
            analysis.files_scanned,
            analysis.digest_fns.len(),
            analysis.structs.len(),
            if errors == 0 && battery_ok {
                "digest coverage clean".to_string()
            } else {
                format!("{} error(s)", errors + usize::from(!battery_ok))
            },
        );
    }
    analysis.is_clean() && battery_ok
}

fn run_determinism(opts: &Options) -> bool {
    let roots = [
        opts.root.join("crates/inject/src"),
        opts.root.join("crates/bench/src"),
        opts.root.join("crates/store/src"),
        opts.root.join("crates/snapshot/src"),
        opts.root.join("crates/maskmap/src"),
        opts.root.join("crates/perf/src"),
        opts.root.join("crates/core/src"),
    ];
    let analysis = match analyze_determinism_dirs(&roots) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("restore-audit: cannot scan {}: {e}", opts.root.display());
            return false;
        }
    };
    if opts.json {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in analysis.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&finding_json(f));
        }
        out.push_str(&format!(
            "],\"files_scanned\":{},\"allows_honored\":{},\"clean\":{}}}",
            analysis.files_scanned,
            analysis.allows_honored,
            analysis.is_clean(),
        ));
        println!("{out}");
    } else {
        for f in &analysis.findings {
            println!("{f}");
        }
        let errors = analysis.errors().count();
        println!(
            "restore-audit: scanned {} files, {} exemptions honored: {}",
            analysis.files_scanned,
            analysis.allows_honored,
            if errors == 0 {
                "determinism clean".to_string()
            } else {
                format!("{errors} error(s)")
            },
        );
    }
    analysis.is_clean()
}

fn run_contract() -> bool {
    let program = WorkloadId::Vortexx.build(Scale { size: 32, seed: 7 });
    let mut ok = true;

    let mut pipe = Pipeline::new(UarchConfig::default(), &program);
    for _ in 0..500 {
        pipe.cycle();
    }
    let report = check_contract(&mut pipe, 64);
    println!(
        "uarch-pipeline: {} bits, {} regions, {} fields, {} flips sampled: {}",
        report.total_bits,
        report.regions,
        report.fields,
        report.flips_checked,
        if report.is_ok() { "contract holds" } else { "VIOLATIONS" },
    );
    for v in &report.violations {
        println!("  {v}");
        ok = false;
    }

    let mut cpu = restore_arch::Cpu::new(&program);
    for _ in 0..500 {
        if cpu.is_halted() || cpu.step().is_err() {
            break;
        }
    }
    let report = check_contract(&mut cpu, 64);
    println!(
        "arch-cpu: {} bits, {} regions, {} fields, {} flips sampled: {}",
        report.total_bits,
        report.regions,
        report.fields,
        report.flips_checked,
        if report.is_ok() { "contract holds" } else { "VIOLATIONS" },
    );
    for v in &report.violations {
        println!("  {v}");
        ok = false;
    }
    ok
}

fn run_census(json: bool) {
    let pipe = pipeline_census();
    let cpu = cpu_census();
    if json {
        println!("{{\"machines\":[{},{}]}}", pipe.to_json(), cpu.to_json());
    } else {
        print!("{}", pipe.to_table());
        print!("{}", cpu.to_table());
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let mut ok = true;
    if opts.check {
        ok &= run_check(&opts);
    }
    if opts.digests {
        ok &= run_digests(&opts);
    }
    if opts.determinism {
        ok &= run_determinism(&opts);
    }
    if opts.contract {
        ok &= run_contract();
    }
    if opts.census {
        run_census(opts.json);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
