//! `restore-audit`: soundness guards for the fault-injection substrate.
//!
//! Every campaign result in this workspace rests on one assumption: the
//! [`StateVisitor`](restore_arch::state::StateVisitor) walks really do
//! cover every bit of architecturally interesting state, with stable
//! global numbering and lossless flips. This crate checks that
//! assumption from two directions:
//!
//! * [`scanner`] — a static, dependency-free token-level analyzer over
//!   the simulator sources. For every type with a `FaultState` impl or a
//!   `visit`/`visit_state` method it cross-checks declared struct fields
//!   against the fields the walk actually hands to the visitor, enforces
//!   explicit `// audit: skip -- <reason>` exemptions for everything
//!   else, and width/type soundness on direct visits.
//! * [`contract`] — a runtime checker that wraps real machine walks in a
//!   [`ContractVisitor`] and verifies the
//!   protocol invariants: region-before-word, stable bit numbering
//!   across consecutive walks, non-mutating hash paths, and
//!   flip ∘ flip = identity on sampled bits.
//! * [`census`] — the per-region bit census (latch/RAM × control/data)
//!   of both machine models, for comparison against the paper's §4
//!   numbers.
//!
//! The `restore-audit` binary wires all three into CI.

#![forbid(unsafe_code)]

pub mod battery;
pub mod census;
pub mod contract;
pub mod determinism;
pub mod digests;
pub(crate) mod lex;
pub mod scanner;

pub use battery::{default_batteries, run_battery, BatteryReport, FieldPerturbation};
pub use census::{cpu_census, pipeline_census, Census};
pub use contract::{check_contract, ContractReport, ContractVisitor};
pub use determinism::{analyze_determinism_dirs, analyze_determinism_sources, DeterminismAnalysis};
pub use digests::{analyze_digest_dirs, analyze_digest_sources, DigestAnalysis};
pub use scanner::{analyze_dirs, analyze_sources, Analysis, Finding, Severity};
