//! Static digest-coverage scanner: cache-key soundness for the store.
//!
//! Every persisted trial is keyed by a campaign-config digest
//! (`uarch_campaign_digest`, `arch_campaign_digest`, the `FaultModel`
//! `config_digest`/`campaign_digest` methods, `cell_digest`). A config
//! field that shapes results but is *not* folded into the digest makes
//! two different campaigns collide on one store key, silently serving
//! stale trials. This pass proves, at the token level and with zero
//! dependencies (mirroring [`crate::scanner`]), that every declared
//! field of every config struct reachable from a digest-function body
//! is either folded into the digest or explicitly exempted:
//!
//! ```text
//! // digest: neutral -- <reason the field cannot shape trial results>
//! ```
//!
//! placed on the field's line or between it and the previous field. The
//! reason is mandatory; a `digest:` comment that does not parse is
//! itself a finding, and an exempted field that *is* folded is a
//! finding too (`neutral-but-folded`) — the comment would be lying.
//!
//! Fold evidence is the union across every digest function: a path like
//! `cfg.detectors.sig_chunk` folds `UarchCampaignConfig.detectors` and
//! `DetectorConfig.sig_chunk`; a single-segment fold of a struct-typed
//! field (`.debug(&cfg.uarch)`) covers the whole substructure through
//! its `Debug` rendering, so the interior is not descended into.
//! Passing a whole struct onward (`uarch_campaign_digest(self.cfg)`)
//! likewise folds only the `cfg` field of the wrapper — the inner
//! struct's own coverage comes from the callee's body, which is also a
//! digest root.

use crate::lex::{skip_balanced, skip_generics, tokenize, Tok, Token};
use crate::scanner::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One declared config-struct field as the digest pass sees it.
#[derive(Debug, Clone)]
pub struct DigestField {
    /// Field name.
    pub name: String,
    /// Declared type with references/lifetimes stripped (`UarchConfig`).
    pub base_ty: String,
    /// 1-based source line of the declaration.
    pub line: u32,
    /// Exemption reason, if the field carries `// digest: neutral -- …`.
    pub neutral: Option<String>,
}

/// One struct with named fields, as harvested from a scanned file.
#[derive(Debug, Clone)]
pub struct DigestStruct {
    /// Type name.
    pub name: String,
    /// Source file.
    pub file: PathBuf,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Declared fields in order.
    pub fields: Vec<DigestField>,
}

/// One digest-root function and the field paths its body folds.
#[derive(Debug, Clone)]
pub struct DigestFn {
    /// Function name (`uarch_campaign_digest`, `config_digest`, …).
    pub name: String,
    /// Source file.
    pub file: PathBuf,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter bindings: name → base type (`self` included).
    pub params: Vec<(String, String)>,
    /// Folded field paths, rooted at a parameter (`cfg.detectors.sig_chunk`).
    pub folds: Vec<Vec<String>>,
}

/// Per-struct shaped/neutral classification for reports and `--json`.
#[derive(Debug, Clone)]
pub struct StructReport {
    /// Type name.
    pub name: String,
    /// Source file.
    pub file: PathBuf,
    /// Fields folded into at least one digest.
    pub shaped: Vec<String>,
    /// Fields exempted as result-neutral.
    pub neutral: Vec<String>,
}

/// The digest pass result.
#[derive(Debug, Default)]
pub struct DigestAnalysis {
    /// Reachable structs with their classification, name-sorted.
    pub structs: Vec<StructReport>,
    /// Digest-root functions found.
    pub digest_fns: Vec<String>,
    /// Everything noteworthy, errors first.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl DigestAnalysis {
    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity == Severity::Error)
    }

    /// True when no error-severity findings exist.
    pub fn is_clean(&self) -> bool {
        self.errors().count() == 0
    }
}

/// A function is a digest root iff the store (or a cache keyed off the
/// store) uses its return value as a key. Matching on exact names keeps
/// `TrialStore::content_digest` — a digest *of results*, not of config —
/// out of the root set.
fn is_digest_root(name: &str) -> bool {
    name == "config_digest" || name == "cell_digest" || name.ends_with("campaign_digest")
}

/// Strips `&`, `mut`, and lifetime tokens off a type prefix and returns
/// the first path ident (`&'a UarchCampaignConfig` → `UarchCampaignConfig`).
fn base_type(toks: &[Token], mut i: usize, end: usize) -> Option<String> {
    while i < end {
        match &toks[i].tok {
            Tok::Punct('&') | Tok::Other => i += 1,
            Tok::Ident(k) if k == "mut" || k == "dyn" => i += 1,
            Tok::Ident(k) => return Some(k.clone()),
            _ => return None,
        }
    }
    None
}

#[derive(Default)]
struct DigestFacts {
    structs: Vec<DigestStruct>,
    fns: Vec<DigestFn>,
    malformed: Vec<(PathBuf, u32, String)>,
}

/// Scans every `.rs` file under the given roots and cross-checks digest
/// coverage.
///
/// # Errors
///
/// Returns an I/O error if a root cannot be read.
pub fn analyze_digest_dirs(roots: &[PathBuf]) -> std::io::Result<DigestAnalysis> {
    let mut files = Vec::new();
    for root in roots {
        super::scanner::rust_files(root, &mut files)?;
    }
    let mut facts = DigestFacts::default();
    for f in &files {
        let text = std::fs::read_to_string(f)?;
        scan_file(f, &text, &mut facts);
    }
    Ok(cross_check(facts, files.len()))
}

/// Scans in-memory sources (used by tests); paths are labels only.
pub fn analyze_digest_sources(sources: &[(&str, &str)]) -> DigestAnalysis {
    let mut facts = DigestFacts::default();
    for (path, text) in sources {
        scan_file(Path::new(path), text, &mut facts);
    }
    cross_check(facts, sources.len())
}

fn scan_file(path: &Path, text: &str, facts: &mut DigestFacts) {
    let (toks, directives) = tokenize(text);
    let mut neutrals: Vec<(u32, String)> = Vec::new();
    for d in directives.iter().filter(|d| d.prefix == "digest") {
        match d.reason_for("neutral") {
            Ok(reason) => neutrals.push((d.line, reason)),
            Err(raw) => facts.malformed.push((path.to_path_buf(), d.line, raw)),
        }
    }
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Ident(k) if k == "struct" => {
                i = parse_struct(path, &toks, i, &neutrals, facts);
            }
            Tok::Ident(k) if k == "impl" => {
                i = parse_impl(path, &toks, i, facts);
            }
            Tok::Ident(k) if k == "fn" => {
                i = parse_fn(path, &toks, i, None, facts);
            }
            _ => i += 1,
        }
    }
}

/// Parses `struct Name { … }` at the `struct` keyword; returns the index
/// after the item. Tuple and unit structs carry no named fields and are
/// skipped.
fn parse_struct(
    path: &Path,
    toks: &[Token],
    start: usize,
    neutrals: &[(u32, String)],
    facts: &mut DigestFacts,
) -> usize {
    let mut i = start + 1;
    let Some(Tok::Ident(name)) = toks.get(i).map(|t| &t.tok) else { return start + 1 };
    let name = name.clone();
    let line = toks[start].line;
    i += 1;
    i = skip_generics(toks, i);
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct('{')) => {}
        _ => return i, // tuple/unit struct or `where` clause we don't model
    }
    let body_end = skip_balanced(toks, i, '{', '}');
    let mut fields = Vec::new();
    let mut j = i + 1;
    let mut prev_field_line = toks[start].line;
    while j + 1 < body_end {
        // A field is `ident :` at depth 1; skip attributes and `pub`.
        match &toks[j].tok {
            Tok::Punct('#') => {
                j += 1;
                if toks.get(j).is_some_and(|t| t.tok.is_punct('[')) {
                    j = skip_balanced(toks, j, '[', ']');
                }
            }
            Tok::Ident(k) if k == "pub" => {
                j += 1;
                if toks.get(j).is_some_and(|t| t.tok.is_punct('(')) {
                    j = skip_balanced(toks, j, '(', ')');
                }
            }
            Tok::Ident(fname) if toks.get(j + 1).is_some_and(|t| t.tok.is_punct(':')) => {
                let fline = toks[j].line;
                let ty_start = j + 2;
                // The type runs to the `,` (or `}`) at field depth.
                let mut k = ty_start;
                let mut depth = 0i32;
                while k < body_end {
                    match &toks[k].tok {
                        Tok::Punct('<' | '(' | '[') => depth += 1,
                        Tok::Punct('>' | ')' | ']') => depth -= 1,
                        Tok::Punct(',') if depth <= 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                let neutral = neutrals
                    .iter()
                    .find(|(l, _)| (*l > prev_field_line && *l <= fline) || *l == fline)
                    .map(|(_, r)| r.clone());
                fields.push(DigestField {
                    name: fname.clone(),
                    base_ty: base_type(toks, ty_start, k).unwrap_or_default(),
                    line: fline,
                    neutral,
                });
                prev_field_line = fline;
                j = k + 1;
            }
            _ => j += 1,
        }
    }
    facts.structs.push(DigestStruct { name, file: path.to_path_buf(), line, fields });
    body_end
}

/// Parses an `impl` block, resolving `self` in any digest methods to the
/// implemented type (`impl FaultModel for UarchModel<'_>` → `UarchModel`).
fn parse_impl(path: &Path, toks: &[Token], start: usize, facts: &mut DigestFacts) -> usize {
    let mut i = skip_generics(toks, start + 1);
    // `impl Trait for Type { … }` or `impl Type { … }`: the self type is
    // the last path ident before the body.
    let mut self_ty = None;
    while i < toks.len() && !toks[i].tok.is_punct('{') {
        if let Tok::Ident(k) = &toks[i].tok {
            if k == "where" {
                break;
            }
            self_ty = Some(k.clone());
        }
        i += 1;
    }
    while i < toks.len() && !toks[i].tok.is_punct('{') {
        i += 1;
    }
    let body_end = skip_balanced(toks, i, '{', '}');
    let mut j = i + 1;
    while j + 1 < body_end {
        if toks[j].tok.is_ident("fn") {
            j = parse_fn(path, toks, j, self_ty.as_deref(), facts);
        } else {
            j += 1;
        }
    }
    body_end
}

/// Parses `fn name(params) { body }` at the `fn` keyword; harvests fold
/// paths if the function is a digest root. Returns the index after the
/// body (or signature, for trait-declaration fns without one).
fn parse_fn(
    path: &Path,
    toks: &[Token],
    start: usize,
    self_ty: Option<&str>,
    facts: &mut DigestFacts,
) -> usize {
    let mut i = start + 1;
    let Some(Tok::Ident(name)) = toks.get(i).map(|t| &t.tok) else { return start + 1 };
    let name = name.clone();
    let line = toks[start].line;
    i += 1;
    i = skip_generics(toks, i);
    if !toks.get(i).is_some_and(|t| t.tok.is_punct('(')) {
        return i;
    }
    let params_end = skip_balanced(toks, i, '(', ')');
    let mut params: Vec<(String, String)> = Vec::new();
    if is_digest_root(&name) {
        let mut j = i + 1;
        while j < params_end {
            match &toks[j].tok {
                Tok::Ident(k) if k == "self" => {
                    if let Some(ty) = self_ty {
                        params.push(("self".to_string(), ty.to_string()));
                    }
                    j += 1;
                }
                Tok::Ident(k) if toks.get(j + 1).is_some_and(|t| t.tok.is_punct(':')) => {
                    let pname = k.clone();
                    // The type runs to the `,` at paren depth 1.
                    let mut k2 = j + 2;
                    let mut depth = 0i32;
                    while k2 < params_end {
                        match &toks[k2].tok {
                            Tok::Punct('<' | '(') => depth += 1,
                            Tok::Punct('>' | ')') => depth -= 1,
                            Tok::Punct(',') if depth <= 0 => break,
                            _ => {}
                        }
                        k2 += 1;
                    }
                    if let Some(ty) = base_type(toks, j + 2, k2) {
                        params.push((pname, ty));
                    }
                    j = k2 + 1;
                }
                _ => j += 1,
            }
        }
    }
    // Find the body (skip return type / where clause).
    let mut b = params_end;
    while b < toks.len() && !toks[b].tok.is_punct('{') {
        if toks[b].tok.is_punct(';') {
            return b + 1; // trait declaration without a body
        }
        b += 1;
    }
    let body_end = skip_balanced(toks, b, '{', '}');
    if !params.is_empty() {
        let mut folds = Vec::new();
        let mut j = b + 1;
        while j < body_end {
            let is_param = matches!(&toks[j].tok, Tok::Ident(k)
                if params.iter().any(|(p, _)| p == k));
            // Only a *root* use counts: `foo.cfg` must not read the `cfg`
            // segment as a fresh path rooted at a parameter named `cfg`.
            let preceded_by_dot = j > 0 && toks[j - 1].tok.is_punct('.');
            if is_param && !preceded_by_dot {
                let root = toks[j].tok.ident().unwrap_or_default().to_string();
                let mut segs = vec![root];
                let mut k = j + 1;
                while toks.get(k).is_some_and(|t| t.tok.is_punct('.'))
                    && matches!(toks.get(k + 1).map(|t| &t.tok), Some(Tok::Ident(_)))
                {
                    segs.push(toks[k + 1].tok.ident().unwrap_or_default().to_string());
                    k += 2;
                }
                // `cfg.detectors.sig_chunk(…)` would be a method call on
                // the last segment, not a field fold — drop it.
                if segs.len() > 1 && toks.get(k).is_some_and(|t| t.tok.is_punct('(')) {
                    segs.pop();
                }
                if segs.len() > 1 {
                    folds.push(segs);
                }
                j = k;
            } else {
                j += 1;
            }
        }
        facts.fns.push(DigestFn { name, file: path.to_path_buf(), line, params, folds });
    }
    body_end
}

fn cross_check(facts: DigestFacts, files_scanned: usize) -> DigestAnalysis {
    let by_name: BTreeMap<&str, &DigestStruct> =
        facts.structs.iter().map(|s| (s.name.as_str(), s)).collect();

    // Union fold evidence per struct across every digest fn, resolving
    // each path segment-by-segment through declared field types. A
    // struct becomes *reachable* (and therefore checked) when it is a
    // digest parameter type or a path descends into it.
    let mut folded: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut reachable: BTreeSet<String> = BTreeSet::new();
    for f in &facts.fns {
        for (_, ty) in &f.params {
            if by_name.contains_key(ty.as_str()) {
                reachable.insert(ty.clone());
            }
        }
        for path in &f.folds {
            let Some((_, root_ty)) = f.params.iter().find(|(p, _)| p == &path[0]) else {
                continue;
            };
            let mut cur = root_ty.clone();
            for (depth, seg) in path[1..].iter().enumerate() {
                let Some(st) = by_name.get(cur.as_str()) else { break };
                if depth > 0 {
                    reachable.insert(cur.clone());
                }
                let Some(field) = st.fields.iter().find(|fl| &fl.name == seg) else { break };
                folded.entry(cur.clone()).or_default().insert(seg.clone());
                cur = field.base_ty.clone();
            }
        }
    }

    let mut findings = Vec::new();
    for (file, line, raw) in &facts.malformed {
        findings.push(Finding {
            severity: Severity::Error,
            kind: "malformed-digest-exemption",
            type_name: String::new(),
            field: String::new(),
            file: file.clone(),
            line: *line,
            detail: format!(
                "unparseable digest comment `// {raw}` — expected `// digest: neutral -- <reason>`"
            ),
        });
    }

    let empty = BTreeSet::new();
    let mut reports = Vec::new();
    for name in &reachable {
        let st = by_name[name.as_str()];
        let folds = folded.get(name).unwrap_or(&empty);
        let mut shaped = Vec::new();
        let mut neutral = Vec::new();
        for field in &st.fields {
            let is_folded = folds.contains(&field.name);
            match (&field.neutral, is_folded) {
                (None, true) => shaped.push(field.name.clone()),
                (Some(_), false) => neutral.push(field.name.clone()),
                (None, false) => findings.push(Finding {
                    severity: Severity::Error,
                    kind: "unfolded-field",
                    type_name: st.name.clone(),
                    field: field.name.clone(),
                    file: st.file.clone(),
                    line: field.line,
                    detail: format!(
                        "field `{}` of digest-reachable `{}` is neither folded into any \
                         digest nor exempted with `// digest: neutral -- <reason>`; an \
                         unfolded result-shaping field makes distinct campaigns collide \
                         on one store key",
                        field.name, st.name
                    ),
                }),
                (Some(reason), true) => findings.push(Finding {
                    severity: Severity::Error,
                    kind: "neutral-but-folded",
                    type_name: st.name.clone(),
                    field: field.name.clone(),
                    file: st.file.clone(),
                    line: field.line,
                    detail: format!(
                        "field `{}` of `{}` is exempted as digest-neutral (`{}`) but IS \
                         folded into a digest — the exemption is lying; drop the comment \
                         or the fold",
                        field.name, st.name, reason
                    ),
                }),
            }
        }
        reports.push(StructReport {
            name: st.name.clone(),
            file: st.file.clone(),
            shaped,
            neutral,
        });
    }

    findings.sort_by_key(|f| (f.severity != Severity::Error, f.file.clone(), f.line));
    let mut digest_fns: Vec<String> = facts.fns.iter().map(|f| f.name.clone()).collect();
    digest_fns.sort();
    digest_fns.dedup();
    DigestAnalysis { structs: reports, digest_fns, findings, files_scanned }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: &str = r#"
        pub struct Cfg {
            pub scale: Scale,
            pub window: u64,
            // digest: neutral -- scheduling knob, results are thread-invariant
            pub threads: usize,
            pub detectors: Det,
        }
        pub struct Det {
            pub sig_chunk: u64,
            pub dup_mask: u32,
        }
        pub fn my_campaign_digest(cfg: &Cfg) -> u64 {
            ConfigDigest::new()
                .debug(&cfg.scale)
                .word(cfg.window)
                .word(cfg.detectors.sig_chunk)
                .word(u64::from(cfg.detectors.dup_mask))
                .finish()
        }
    "#;

    #[test]
    fn covered_config_is_clean_and_classified() {
        let a = analyze_digest_sources(&[("cfg.rs", CFG)]);
        assert!(a.is_clean(), "{:?}", a.findings);
        let cfg = a.structs.iter().find(|s| s.name == "Cfg").unwrap();
        assert_eq!(cfg.shaped, ["scale", "window", "detectors"]);
        assert_eq!(cfg.neutral, ["threads"]);
        let det = a.structs.iter().find(|s| s.name == "Det").unwrap();
        assert_eq!(det.shaped, ["sig_chunk", "dup_mask"]);
    }

    #[test]
    fn unfolded_field_is_an_error() {
        let src = CFG.replace(".word(cfg.window)\n", "");
        let a = analyze_digest_sources(&[("cfg.rs", &src)]);
        let errs: Vec<_> = a.errors().collect();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].kind, "unfolded-field");
        assert_eq!(errs[0].field, "window");
    }

    #[test]
    fn unfolded_nested_detector_field_is_an_error() {
        let src = CFG.replace(".word(u64::from(cfg.detectors.dup_mask))\n", "");
        let a = analyze_digest_sources(&[("cfg.rs", &src)]);
        let errs: Vec<_> = a.errors().collect();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].type_name, "Det");
        assert_eq!(errs[0].field, "dup_mask");
    }

    #[test]
    fn folded_but_exempt_field_is_an_error() {
        let src = CFG.replace(
            "pub window: u64,",
            "// digest: neutral -- claims to be neutral\n            pub window: u64,",
        );
        let a = analyze_digest_sources(&[("cfg.rs", &src)]);
        let errs: Vec<_> = a.errors().collect();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].kind, "neutral-but-folded");
        assert_eq!(errs[0].field, "window");
    }

    #[test]
    fn reasonless_exemption_is_malformed() {
        let src = CFG.replace(
            "// digest: neutral -- scheduling knob, results are thread-invariant",
            "// digest: neutral",
        );
        let a = analyze_digest_sources(&[("cfg.rs", &src)]);
        let kinds: Vec<_> = a.errors().map(|e| e.kind).collect();
        // The comment is malformed AND no longer exempts `threads`.
        assert!(kinds.contains(&"malformed-digest-exemption"), "{kinds:?}");
        assert!(kinds.contains(&"unfolded-field"), "{kinds:?}");
    }

    #[test]
    fn self_methods_resolve_through_the_impl_type() {
        let src = r#"
            struct Model<'a> { cfg: &'a Cfg }
            struct Cfg { pub window: u64 }
            impl<'a> FaultModel for Model<'a> {
                fn campaign_digest(&self) -> u64 { my_campaign_digest(self.cfg) }
            }
            fn my_campaign_digest(cfg: &Cfg) -> u64 { cfg.window }
        "#;
        let a = analyze_digest_sources(&[("m.rs", src)]);
        assert!(a.is_clean(), "{:?}", a.findings);
        let model = a.structs.iter().find(|s| s.name == "Model").unwrap();
        assert_eq!(model.shaped, ["cfg"]);
    }

    #[test]
    fn whole_struct_debug_fold_covers_the_substructure() {
        // `.debug(&cfg.uarch)` folds the entire UarchConfig rendering;
        // its interior must not be descended into and flagged.
        let src = r#"
            struct Cfg { pub uarch: Sub }
            struct Sub { pub a: u64, pub b: u64 }
            fn my_campaign_digest(cfg: &Cfg) -> u64 {
                ConfigDigest::new().debug(&cfg.uarch).finish()
            }
        "#;
        let a = analyze_digest_sources(&[("m.rs", src)]);
        assert!(a.is_clean(), "{:?}", a.findings);
        assert!(!a.structs.iter().any(|s| s.name == "Sub"), "Sub is not reachable");
    }

    #[test]
    fn method_call_tail_is_not_a_field_fold() {
        let src = r#"
            struct Cfg {
                pub window: u64,
                // digest: neutral -- derived, not stored state
                pub len: usize,
            }
            fn my_campaign_digest(cfg: &Cfg) -> u64 {
                let _ = cfg.window.to_string();
                cfg.window
            }
        "#;
        let a = analyze_digest_sources(&[("m.rs", src)]);
        assert!(a.is_clean(), "{:?}", a.findings);
    }

    #[test]
    fn non_root_digest_helpers_are_ignored() {
        // `content_digest` digests *results*, not config — it must not
        // drag its argument types into the reachable set.
        let src = r#"
            struct Rec { pub payload: u64 }
            fn content_digest(rec: &Rec) -> u64 { rec.payload }
        "#;
        let a = analyze_digest_sources(&[("m.rs", src)]);
        assert!(a.structs.is_empty());
        assert!(a.digest_fns.is_empty());
    }
}
