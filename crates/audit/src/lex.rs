//! The shared token stream behind every static pass in this crate.
//!
//! All three analyzers — the state-coverage [`crate::scanner`], the
//! digest-coverage scanner ([`crate::digests`]) and the determinism
//! lint ([`crate::determinism`]) — work on the same dependency-free
//! lexical view of Rust source: identifiers, punctuation and integer
//! literals with their source lines, plus the harvested `// <prefix>:`
//! exemption directives. Centralizing the lexer here keeps the three
//! passes' view of a file identical (one string-literal or lifetime
//! mis-parse would otherwise desynchronize them) and gives each pass
//! only the directives of its own namespace, so an `// audit:` typo can
//! never be mistaken for a digest exemption or vice versa.

/// One lexical token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Token kinds the analyzers distinguish.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character.
    Punct(char),
    /// Integer literal (decimal or hex, `_` separators allowed).
    Int(u64),
    /// Anything else (float/string/char/lifetime placeholder).
    Other,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tok::Ident(i) if i == s)
    }
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(i) => Some(i),
            _ => None,
        }
    }
}

/// The directive namespaces the analyzers recognize. A comment whose
/// leading word is none of these is ordinary prose and never harvested,
/// so each pass sees exactly its own grammar (plus, via
/// [`Directive::prefix`], nothing else's).
pub(crate) const DIRECTIVE_PREFIXES: [&str; 3] = ["audit", "digest", "determinism"];

/// One `// <prefix>: …` comment found during tokenization.
#[derive(Debug, Clone)]
pub(crate) struct Directive {
    /// Namespace word before the colon (`audit`, `digest`, …).
    pub prefix: &'static str,
    /// 1-based source line of the comment.
    pub line: u32,
    /// Trimmed text after the colon.
    pub text: String,
}

impl Directive {
    /// Parses the common `<keyword> -- <reason>` grammar shared by
    /// every namespace (`audit: skip -- r`, `digest: neutral -- r`,
    /// `determinism: allow -- r`): `Ok(reason)` for a well-formed
    /// directive with a non-empty reason, `Err(raw)` otherwise — the
    /// raw text lets the caller render the malformed directive.
    pub fn reason_for(&self, keyword: &str) -> Result<String, String> {
        let raw = format!("{}: {}", self.prefix, self.text);
        match self.text.strip_prefix(keyword) {
            Some(tail) => match tail.trim().strip_prefix("--") {
                Some(reason) if !reason.trim().is_empty() => Ok(reason.trim().to_string()),
                _ => Err(raw),
            },
            None => Err(raw),
        }
    }
}

/// Tokenizes Rust source, stripping comments/strings but harvesting
/// directive comments from every recognized namespace.
pub(crate) fn tokenize(text: &str) -> (Vec<Token>, Vec<Directive>) {
    let bytes: Vec<char> = text.chars().collect();
    let mut toks = Vec::new();
    let mut directives = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;
    let n = bytes.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && bytes[j] != '\n' {
                    j += 1;
                }
                let comment: String = bytes[start..j].iter().collect();
                let trimmed = comment.trim_start_matches(['/', '!']).trim();
                for prefix in DIRECTIVE_PREFIXES {
                    if let Some(rest) = trimmed.strip_prefix(prefix) {
                        if let Some(text) = rest.strip_prefix(':') {
                            directives.push(Directive {
                                prefix,
                                line,
                                text: text.trim().to_string(),
                            });
                            break;
                        }
                    }
                }
                i = j;
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                // String literal (handles escapes; raw strings are caught
                // by the `r` ident path below falling through here, which
                // is good enough for the sources we scan).
                i += 1;
                while i < n {
                    match bytes[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Token { tok: Tok::Other, line });
            }
            '\'' => {
                // Lifetime or char literal. A lifetime is `'ident` not
                // followed by a closing quote.
                let mut j = i + 1;
                if j < n && is_ident_start(bytes[j]) {
                    while j < n && is_ident_cont(bytes[j]) {
                        j += 1;
                    }
                    if j < n && bytes[j] == '\'' {
                        // char literal like 'a'
                        i = j + 1;
                    } else {
                        i = j; // lifetime
                    }
                    toks.push(Token { tok: Tok::Other, line });
                } else {
                    // char literal with escape or punctuation: '\n', '%'
                    i += 1;
                    while i < n && bytes[i] != '\'' {
                        if bytes[i] == '\\' {
                            i += 1;
                        }
                        if bytes[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                    toks.push(Token { tok: Tok::Other, line });
                }
            }
            c if is_ident_start(c) => {
                let mut j = i;
                while j < n && is_ident_cont(bytes[j]) {
                    j += 1;
                }
                let ident: String = bytes[i..j].iter().collect();
                toks.push(Token { tok: Tok::Ident(ident), line });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_' || bytes[j] == '.')
                {
                    // Stop a float's `.` from eating a method call: `1.max(2)`.
                    if bytes[j] == '.' && j + 1 < n && !bytes[j + 1].is_ascii_digit() {
                        break;
                    }
                    j += 1;
                }
                let lit: String = bytes[i..j].iter().filter(|&&ch| ch != '_').collect();
                let tok = if let Some(hex) = lit.strip_prefix("0x").or(lit.strip_prefix("0X")) {
                    u64::from_str_radix(hex, 16).map(Tok::Int).unwrap_or(Tok::Other)
                } else {
                    let digits: String = lit.chars().take_while(char::is_ascii_digit).collect();
                    let has_suffix_only =
                        lit.chars().skip(digits.len()).all(|ch| ch.is_ascii_alphabetic());
                    if has_suffix_only {
                        digits.parse::<u64>().map(Tok::Int).unwrap_or(Tok::Other)
                    } else {
                        Tok::Other
                    }
                };
                toks.push(Token { tok, line });
                i = j;
            }
            c if c.is_whitespace() => i += 1,
            c => {
                toks.push(Token { tok: Tok::Punct(c), line });
                i += 1;
            }
        }
    }
    (toks, directives)
}

/// Advances past a balanced `<…>` group if one starts at `i`.
pub(crate) fn skip_generics(toks: &[Token], mut i: usize) -> usize {
    if i < toks.len() && toks[i].tok.is_punct('<') {
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i].tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    i
}

/// Advances past a balanced group opened by the delimiter at `i`.
pub(crate) fn skip_balanced(toks: &[Token], mut i: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        if toks[i].tok.is_punct(open) {
            depth += 1;
        } else if toks[i].tok.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directives_of_every_namespace_are_harvested() {
        let src = "// audit: skip -- a\nlet x = 1; // digest: neutral -- b\n\
                   // determinism: allow -- c\n// plain comment: not a directive\n";
        let (_, dirs) = tokenize(src);
        let seen: Vec<(&str, u32)> = dirs.iter().map(|d| (d.prefix, d.line)).collect();
        assert_eq!(seen, vec![("audit", 1), ("digest", 2), ("determinism", 3)]);
        assert_eq!(dirs[0].reason_for("skip").as_deref(), Ok("a"));
        assert_eq!(dirs[1].reason_for("neutral").as_deref(), Ok("b"));
        assert_eq!(dirs[2].reason_for("allow").as_deref(), Ok("c"));
    }

    #[test]
    fn malformed_directives_surface_their_raw_text() {
        let (_, dirs) = tokenize("// digest: neutral\n// audit: skpi -- typo\n");
        assert_eq!(dirs[0].reason_for("neutral"), Err("digest: neutral".to_string()));
        assert_eq!(dirs[1].reason_for("skip"), Err("audit: skpi -- typo".to_string()));
    }

    #[test]
    fn wrong_namespace_is_not_cross_harvested() {
        let (_, dirs) = tokenize("// digest: neutral -- fine\n");
        assert!(dirs.iter().all(|d| d.prefix == "digest"));
    }
}
