//! Runtime visitor-contract checker.
//!
//! The static scanner proves every field is *mentioned* by a walk; this
//! module proves the walk itself behaves: [`ContractVisitor`] rides along
//! a `visit_state` traversal recording a full event trace and flagging
//! protocol violations, and [`check_contract`] drives a battery of walks
//! over one machine to verify the cross-walk invariants the injection
//! engine silently relies on:
//!
//! 1. every `word` is preceded by a `region` (no orphan bits),
//! 2. declared widths are in `1..=64` and values fit their width mask,
//! 3. two consecutive walks produce identical traces — the global bit
//!    numbering is stable and a read-only visitor does not mutate state,
//! 4. hash-path walks ([`StateHasher`]) do not mutate state either,
//! 5. flipping the same global bit twice restores the original digest
//!    (flip ∘ flip = identity) on a deterministic bit sample,
//! 6. the occupancy channel ends the walk live and every region starts
//!    implicitly live.

use restore_arch::state::{
    width_mask, BitFlipper, FaultState, FieldClass, StateHasher, StateKind, StateVisitor,
};

/// One event observed during a walk, in traversal order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// `region(name, kind)`.
    Region {
        /// Region name.
        name: &'static str,
        /// Latch or RAM.
        kind: StateKind,
    },
    /// `word(value, width, class)` (including the `flag`/`word32`/`word8`
    /// wrappers, which funnel into `word`).
    Word {
        /// Value at visit time.
        value: u64,
        /// Declared width.
        width: u32,
        /// Control or data.
        class: FieldClass,
    },
    /// `occupancy(live)`.
    Occupancy(bool),
}

/// One contract violation, with the global bit position it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Global bit index where the walk stood when the violation fired.
    pub at_bit: u64,
    /// Region the walk was in, if any.
    pub region: Option<&'static str>,
    /// Description.
    pub what: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "contract violation at bit {} (region {}): {}",
            self.at_bit,
            self.region.unwrap_or("<none>"),
            self.what
        )
    }
}

/// Recording visitor that checks the per-walk half of the contract.
#[derive(Debug, Default)]
pub struct ContractVisitor {
    /// Full event trace in traversal order.
    pub trace: Vec<TraceEvent>,
    /// Violations observed during this walk.
    pub violations: Vec<Violation>,
    /// Total bits walked.
    pub total_bits: u64,
    region: Option<&'static str>,
    live: bool,
}

impl ContractVisitor {
    /// Fresh checker.
    pub fn new() -> ContractVisitor {
        ContractVisitor {
            trace: Vec::new(),
            violations: Vec::new(),
            total_bits: 0,
            region: None,
            live: true,
        }
    }

    fn violate(&mut self, what: String) {
        self.violations.push(Violation { at_bit: self.total_bits, region: self.region, what });
    }

    /// `true` if the walk ended with the occupancy channel live — dead
    /// trailing state would mean the component forgot to close its
    /// occupancy bracket.
    pub fn ended_live(&self) -> bool {
        self.live
    }
}

impl StateVisitor for ContractVisitor {
    fn region(&mut self, name: &'static str, kind: StateKind) {
        self.region = Some(name);
        self.live = true; // regions start implicitly live
        self.trace.push(TraceEvent::Region { name, kind });
    }

    fn word(&mut self, value: &mut u64, width: u32, class: FieldClass) {
        if self.region.is_none() {
            self.violate(format!("word of width {width} visited before any region was declared"));
        }
        if width == 0 {
            self.violate("zero-width word".to_string());
        } else if width > 64 {
            self.violate(format!("width {width} exceeds the 64-bit word limit"));
        }
        if *value & !width_mask(width) != 0 {
            self.violate(format!("value {:#x} has bits set above declared width {width}", *value));
        }
        self.trace.push(TraceEvent::Word { value: *value, width, class });
        self.total_bits += width as u64;
    }

    fn occupancy(&mut self, live: bool) {
        if self.region.is_none() {
            self.violate("occupancy declared before any region".to_string());
        }
        self.live = live;
        self.trace.push(TraceEvent::Occupancy(live));
    }

    fn wants_occupancy(&self) -> bool {
        true
    }
}

/// Result of a full [`check_contract`] battery.
#[derive(Debug)]
pub struct ContractReport {
    /// Total bits in the walk.
    pub total_bits: u64,
    /// Regions declared.
    pub regions: usize,
    /// Fields (word calls) in the walk.
    pub fields: usize,
    /// Bits exercised by the flip-involution sample.
    pub flips_checked: usize,
    /// All violations, across every phase of the battery.
    pub violations: Vec<Violation>,
}

impl ContractReport {
    /// `true` when every invariant held.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Deterministic sample of up to `max` bit indices in `0..total`,
/// covering both ends and a spread of interior bits (splitmix64 stream,
/// fixed seed — no RNG dependency, reproducible across runs).
fn sample_bits(total: u64, max: usize) -> Vec<u64> {
    if total == 0 {
        return Vec::new();
    }
    let mut bits = vec![0, total - 1];
    let mut x = 0x243f_6a88_85a3_08d3u64; // fixed seed (pi digits)
    while bits.len() < max.min(total as usize) {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let b = z % total;
        if !bits.contains(&b) {
            bits.push(b);
        }
    }
    bits.sort_unstable();
    bits.dedup();
    bits
}

/// Runs the full invariant battery against one machine.
///
/// The machine is walked several times (contract ×3, hash ×3, and two
/// flips per sampled bit); all walks must leave it bit-identical, which
/// the battery itself verifies — on success the caller gets its machine
/// back unperturbed.
pub fn check_contract<M: FaultState>(machine: &mut M, flip_samples: usize) -> ContractReport {
    // Phase 1: record the reference trace.
    let mut first = ContractVisitor::new();
    machine.visit_state(&mut first);
    let mut violations = first.violations.clone();
    if !first.ended_live() {
        violations.push(Violation {
            at_bit: first.total_bits,
            region: None,
            what: "walk ended with the occupancy channel dead".to_string(),
        });
    }

    // A walk that already broke the per-walk contract (orphan words,
    // out-of-width values, dead tail) cannot be driven through the
    // hash/flip phases safely — the hash path debug_asserts exactly the
    // property phase 1 just reported broken. Stop here.
    if !violations.is_empty() {
        let regions = first.trace.iter().filter(|e| matches!(e, TraceEvent::Region { .. })).count();
        let fields = first.trace.iter().filter(|e| matches!(e, TraceEvent::Word { .. })).count();
        return ContractReport {
            total_bits: first.total_bits,
            regions,
            fields,
            flips_checked: 0,
            violations,
        };
    }

    // Phase 2: a second walk must produce the identical trace — stable
    // bit numbering, and the recording walk itself mutated nothing.
    let mut second = ContractVisitor::new();
    machine.visit_state(&mut second);
    if second.trace != first.trace {
        violations.push(diff_traces(&first.trace, &second.trace, "second contract walk"));
    }

    // Phase 3: hash walks must not mutate state. Hash twice (digests
    // must agree), then re-trace and compare against the reference.
    let mut h1 = StateHasher::new();
    machine.visit_state(&mut h1);
    let baseline = h1.finish();
    let mut h2 = StateHasher::new();
    machine.visit_state(&mut h2);
    if h2.finish() != baseline {
        violations.push(Violation {
            at_bit: 0,
            region: None,
            what: "two consecutive hash walks disagree — walk order or state is unstable"
                .to_string(),
        });
    }
    let mut post_hash = ContractVisitor::new();
    machine.visit_state(&mut post_hash);
    if post_hash.trace != first.trace {
        violations.push(diff_traces(&first.trace, &post_hash.trace, "post-hash walk"));
    }

    // Phase 4: flip ∘ flip = identity on a deterministic bit sample.
    let sample = sample_bits(first.total_bits, flip_samples);
    let mut flips_checked = 0;
    for &bit in &sample {
        let mut f1 = BitFlipper::new(bit);
        machine.visit_state(&mut f1);
        if !f1.flipped {
            violations.push(Violation {
                at_bit: bit,
                region: None,
                what: "BitFlipper never reached its target bit — walk shorter than counted"
                    .to_string(),
            });
            continue;
        }
        let mut mid = StateHasher::new();
        machine.visit_state(&mut mid);
        if mid.finish() == baseline {
            violations.push(Violation {
                at_bit: bit,
                region: None,
                what: "flipping a bit left the state digest unchanged — the bit is not \
                       actually wired into the machine"
                    .to_string(),
            });
        }
        let mut f2 = BitFlipper::new(bit);
        machine.visit_state(&mut f2);
        let mut restored = StateHasher::new();
        machine.visit_state(&mut restored);
        if restored.finish() != baseline {
            violations.push(Violation {
                at_bit: bit,
                region: None,
                what: "flip ∘ flip did not restore the original digest — the field's \
                       visit round-trips lossily"
                    .to_string(),
            });
        }
        flips_checked += 1;
    }

    let regions = first.trace.iter().filter(|e| matches!(e, TraceEvent::Region { .. })).count();
    let fields = first.trace.iter().filter(|e| matches!(e, TraceEvent::Word { .. })).count();
    ContractReport { total_bits: first.total_bits, regions, fields, flips_checked, violations }
}

/// Builds a violation describing the first divergence between two traces.
fn diff_traces(reference: &[TraceEvent], other: &[TraceEvent], label: &str) -> Violation {
    let idx = reference
        .iter()
        .zip(other.iter())
        .position(|(a, b)| a != b)
        .unwrap_or(reference.len().min(other.len()));
    let describe = |t: Option<&TraceEvent>| match t {
        Some(e) => format!("{e:?}"),
        None => "<trace ended>".to_string(),
    };
    Violation {
        at_bit: 0,
        region: None,
        what: format!(
            "{label} diverged from the reference at event {idx}: expected {}, got {} \
             (trace lengths {} vs {})",
            describe(reference.get(idx)),
            describe(other.get(idx)),
            reference.len(),
            other.len(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Good {
        a: u64,
        b: u32,
        c: bool,
    }

    impl FaultState for Good {
        fn visit_state<V: StateVisitor>(&mut self, v: &mut V) {
            v.region("good", StateKind::Latch);
            v.word(&mut self.a, 64, FieldClass::Data);
            v.word32(&mut self.b, 12, FieldClass::Control);
            v.flag(&mut self.c);
        }
    }

    #[test]
    fn well_behaved_machine_passes() {
        let mut m = Good { a: u64::MAX, b: 0xFFF, c: true };
        let report = check_contract(&mut m, 16);
        assert!(report.is_ok(), "{:#?}", report.violations);
        assert_eq!(report.total_bits, 77);
        assert_eq!(report.regions, 1);
        assert_eq!(report.fields, 3);
        assert!(report.flips_checked >= 2);
        // The battery hands the machine back unperturbed.
        assert_eq!((m.a, m.b, m.c), (u64::MAX, 0xFFF, true));
    }

    struct Orphan(u64);

    impl FaultState for Orphan {
        fn visit_state<V: StateVisitor>(&mut self, v: &mut V) {
            v.word(&mut self.0, 8, FieldClass::Data); // no region first
        }
    }

    #[test]
    fn word_before_region_is_violated() {
        let report = check_contract(&mut Orphan(1), 0);
        assert!(report.violations.iter().any(|v| v.what.contains("before any region")));
    }

    struct WideValue(u64);

    impl FaultState for WideValue {
        fn visit_state<V: StateVisitor>(&mut self, v: &mut V) {
            v.region("wide", StateKind::Latch);
            v.word(&mut self.0, 4, FieldClass::Data); // holds 0xFF — too wide
        }
    }

    #[test]
    fn value_exceeding_width_is_violated() {
        let report = check_contract(&mut WideValue(0xFF), 0);
        assert!(
            report.violations.iter().any(|v| v.what.contains("above declared width")),
            "{:#?}",
            report.violations,
        );
    }

    struct DeadTail(u64);

    impl FaultState for DeadTail {
        fn visit_state<V: StateVisitor>(&mut self, v: &mut V) {
            v.region("tail", StateKind::Ram);
            v.occupancy(false);
            v.word(&mut self.0, 8, FieldClass::Data);
        }
    }

    #[test]
    fn walk_ending_dead_is_violated() {
        let report = check_contract(&mut DeadTail(0), 0);
        assert!(report.violations.iter().any(|v| v.what.contains("occupancy channel dead")));
    }

    /// A walk whose order depends on mutable state: the first traversal
    /// perturbs a counter, so the second trace differs.
    struct Unstable {
        a: u64,
        walks: u64,
    }

    impl FaultState for Unstable {
        fn visit_state<V: StateVisitor>(&mut self, v: &mut V) {
            v.region("unstable", StateKind::Latch);
            self.walks += 1;
            let mut w = self.walks & 0x7;
            v.word(&mut w, 3, FieldClass::Control);
            v.word(&mut self.a, 64, FieldClass::Data);
        }
    }

    #[test]
    fn mutating_walk_is_caught_by_trace_comparison() {
        let report = check_contract(&mut Unstable { a: 5, walks: 0 }, 0);
        assert!(
            report.violations.iter().any(|v| v.what.contains("diverged from the reference")),
            "{:#?}",
            report.violations,
        );
    }

    /// A field whose visit truncates on write-back: flips above the real
    /// storage width are silently dropped, so flip ∘ flip breaks.
    struct Lossy {
        small: u8,
    }

    impl FaultState for Lossy {
        fn visit_state<V: StateVisitor>(&mut self, v: &mut V) {
            v.region("lossy", StateKind::Latch);
            // Declares 16 bits but stores 8: bits 8..16 vanish on write.
            let mut w = self.small as u64;
            v.word(&mut w, 16, FieldClass::Data);
            self.small = w as u8;
        }
    }

    #[test]
    fn lossy_field_fails_flip_involution() {
        let report = check_contract(&mut Lossy { small: 0xAA }, 16);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.what.contains("not actually wired") || v.what.contains("lossily")),
            "{:#?}",
            report.violations,
        );
    }

    #[test]
    fn sample_bits_is_deterministic_and_covers_ends() {
        let a = sample_bits(1000, 32);
        let b = sample_bits(1000, 32);
        assert_eq!(a, b);
        assert!(a.contains(&0));
        assert!(a.contains(&999));
        assert!(a.len() <= 32);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(sample_bits(0, 8).is_empty());
        assert_eq!(sample_bits(1, 8), vec![0]);
    }
}
