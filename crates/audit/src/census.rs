//! Per-region bit census of both machine models.
//!
//! Walks a default-configuration [`Pipeline`] and [`Cpu`] with a
//! `RangeRecorder` and tabulates, per named region, how many bits are
//! latch vs. RAM and control vs. data — the numbers EXPERIMENTS.md
//! compares against the paper's "~46,000 bits of interesting state"
//! (§4.2) and the §5.2.2 protection-domain split. Array sizes are fixed
//! by the configuration, so the census is a function of the config
//! alone, not of how far the machine has run.

use restore_arch::state::{StateCatalog, StateKind};
use restore_arch::Cpu;
use restore_uarch::{Pipeline, UarchConfig};
use restore_workloads::{Scale, WorkloadId};

/// One region's tally.
#[derive(Debug, Clone)]
pub struct RegionCensus {
    /// Region name.
    pub name: &'static str,
    /// `"latch"` or `"ram"`.
    pub kind: &'static str,
    /// Total bits.
    pub bits: u64,
    /// Control-word bits (parity domain in the hardened pipeline).
    pub control_bits: u64,
    /// Datapath bits.
    pub data_bits: u64,
    /// ECC-protected in the hardened pipeline.
    pub ecc: bool,
}

/// Census of one machine model.
#[derive(Debug, Clone)]
pub struct Census {
    /// Machine label (`"uarch-pipeline"` / `"arch-cpu"`).
    pub machine: &'static str,
    /// Per-region rows in traversal order.
    pub regions: Vec<RegionCensus>,
    /// Total eligible bits.
    pub total_bits: u64,
    /// Bits in latch regions.
    pub latch_bits: u64,
    /// Bits in RAM regions.
    pub ram_bits: u64,
    /// Fraction of bits the hardened (§5.2.2) pipeline protects.
    pub lhf_coverage: f64,
    /// Added-storage fraction of the hardened pipeline.
    pub lhf_overhead: f64,
}

impl Census {
    fn from_catalog(machine: &'static str, cat: &StateCatalog) -> Census {
        let regions = cat
            .regions
            .iter()
            .map(|r| RegionCensus {
                name: r.name,
                kind: match r.kind {
                    StateKind::Latch => "latch",
                    StateKind::Ram => "ram",
                },
                bits: r.len,
                control_bits: r.control_bits,
                data_bits: r.len - r.control_bits,
                ecc: r.ecc,
            })
            .collect();
        Census {
            machine,
            regions,
            total_bits: cat.total_bits,
            latch_bits: cat.latch_bits(),
            ram_bits: cat.ram_bits(),
            lhf_coverage: cat.lhf_coverage(),
            lhf_overhead: cat.lhf_overhead(),
        }
    }

    /// Renders as a JSON object (hand-rolled: the census is flat and the
    /// workspace carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"machine\":\"{}\",\"total_bits\":{},\"latch_bits\":{},\"ram_bits\":{},\
             \"lhf_coverage\":{:.6},\"lhf_overhead\":{:.6},\"regions\":[",
            self.machine,
            self.total_bits,
            self.latch_bits,
            self.ram_bits,
            self.lhf_coverage,
            self.lhf_overhead,
        ));
        for (i, r) in self.regions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"bits\":{},\"control_bits\":{},\
                 \"data_bits\":{},\"ecc\":{}}}",
                r.name, r.kind, r.bits, r.control_bits, r.data_bits, r.ecc,
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{} — {} bits ({} latch, {} ram), LHF coverage {:.1}% at {:.1}% overhead\n",
            self.machine,
            self.total_bits,
            self.latch_bits,
            self.ram_bits,
            self.lhf_coverage * 100.0,
            self.lhf_overhead * 100.0,
        );
        out.push_str(&format!(
            "  {:<24} {:>6} {:>8} {:>8} {:>8}  {}\n",
            "region", "kind", "bits", "control", "data", "ecc"
        ));
        for r in &self.regions {
            out.push_str(&format!(
                "  {:<24} {:>6} {:>8} {:>8} {:>8}  {}\n",
                r.name,
                r.kind,
                r.bits,
                r.control_bits,
                r.data_bits,
                if r.ecc { "yes" } else { "-" },
            ));
        }
        out
    }
}

/// A minimal workload: the catalog depends only on configuration, so the
/// smallest deterministic program suffices to construct the machines.
fn seed_program() -> restore_isa::Program {
    WorkloadId::Vortexx.build(Scale { size: 16, seed: 1 })
}

/// Census of the default-configuration out-of-order pipeline.
pub fn pipeline_census() -> Census {
    let program = seed_program();
    let mut p = Pipeline::new(UarchConfig::default(), &program);
    Census::from_catalog("uarch-pipeline", &p.catalog())
}

/// Census of the architectural reference CPU.
pub fn cpu_census() -> Census {
    let program = seed_program();
    let mut c = Cpu::new(&program);
    Census::from_catalog("arch-cpu", &c.catalog())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_census_is_nonempty_and_consistent() {
        let c = pipeline_census();
        assert!(c.regions.len() > 4);
        assert_eq!(c.total_bits, c.latch_bits + c.ram_bits);
        let sum: u64 = c.regions.iter().map(|r| r.bits).sum();
        assert_eq!(sum, c.total_bits);
        for r in &c.regions {
            assert_eq!(r.bits, r.control_bits + r.data_bits, "region {}", r.name);
        }
        assert!(c.lhf_coverage > 0.0 && c.lhf_coverage < 1.0);
        assert!(c.lhf_overhead > 0.0 && c.lhf_overhead < 0.25);
    }

    #[test]
    fn cpu_census_matches_register_file_shape() {
        let c = cpu_census();
        // 31 visitable 64-bit registers (r31 is hardwired zero) + 64-bit PC.
        assert_eq!(c.total_bits, 31 * 64 + 64);
        assert_eq!(c.regions.len(), 2);
    }

    #[test]
    fn json_shape_is_stable() {
        let j = pipeline_census().to_json();
        assert!(j.starts_with("{\"machine\":\"uarch-pipeline\""));
        assert!(j.contains("\"regions\":["));
        assert!(j.ends_with("]}"));
        // Balanced braces: every region object closes.
        let opens = j.matches('{').count();
        let closes = j.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn census_is_deterministic() {
        assert_eq!(pipeline_census().to_json(), pipeline_census().to_json());
    }

    #[test]
    fn table_lists_every_region() {
        let c = pipeline_census();
        let t = c.to_table();
        for r in &c.regions {
            assert!(t.contains(r.name), "missing region {}", r.name);
        }
    }
}
