//! Runtime per-field digest perturbation battery.
//!
//! The static pass ([`crate::digests`]) proves every config field is
//! *mentioned* by a digest body or exempted; this battery proves the
//! digest *behaves*: perturbing a shaped field must change the digest
//! value, perturbing a neutral field must not. Together they close both
//! failure modes — a fold that exists but is value-insensitive (static
//! pass blind, battery catches) and a field nobody remembered at all
//! (battery table blind until completeness fires, static pass catches).
//!
//! The tables below replace the hand-written
//! `campaign_digest_tracks_result_shaping_fields_only` pin tests that
//! previously lived in `uarch_campaign.rs`/`arch_campaign.rs`; the
//! historical digest values those tests implicitly froze are pinned
//! explicitly in [`restore_core::digest`] and asserted in
//! `tests/digest_battery.rs`.

use restore_inject::{
    arch_campaign_digest, uarch_campaign_digest, ArchCampaignConfig, InjectionTarget, PruneMode,
    UarchCampaignConfig,
};
use restore_workloads::Scale;

/// One field mutation with its declared digest classification.
pub struct FieldPerturbation<C: 'static> {
    /// Declared field the mutation touches.
    pub field: &'static str,
    /// True iff the field is folded into the campaign digest; the
    /// battery asserts the digest changes exactly when this is true.
    pub shaped: bool,
    /// The mutation; must change the field's value on any base config.
    pub perturb: fn(&mut C),
}

/// Outcome of running one config type through its table.
#[derive(Debug)]
pub struct BatteryReport {
    /// Config type under test.
    pub type_name: &'static str,
    /// Digest of the (unperturbed) base config.
    pub base_digest: u64,
    /// Perturbations exercised.
    pub checked: usize,
    /// Shaped fields per the table (deduped, declaration order).
    pub shaped_fields: Vec<&'static str>,
    /// Neutral fields per the table (deduped, declaration order).
    pub neutral_fields: Vec<&'static str>,
    /// Human-readable contract violations; empty on success.
    pub failures: Vec<String>,
}

impl BatteryReport {
    /// True when every perturbation honored the contract.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs one config type through its perturbation table against its
/// digest function. `declared` is the full field list of the struct;
/// a declared field with no perturbation is a completeness failure, so
/// adding a config field without extending the table breaks the build
/// exactly like forgetting the digest fold would.
pub fn run_battery<C: Clone>(
    type_name: &'static str,
    base: &C,
    digest: fn(&C) -> u64,
    declared: &[&'static str],
    perturbations: &[FieldPerturbation<C>],
) -> BatteryReport {
    let d0 = digest(base);
    let mut failures = Vec::new();
    if digest(&base.clone()) != d0 {
        failures.push(format!("{type_name}: digest of a cloned base config differs"));
    }
    for field in declared {
        if !perturbations.iter().any(|p| p.field == *field) {
            failures.push(format!(
                "{type_name}.{field}: declared field has no perturbation — extend the \
                 battery table (and the digest fold or `// digest: neutral` exemption)"
            ));
        }
    }
    for p in perturbations {
        let mut c = base.clone();
        (p.perturb)(&mut c);
        let changed = digest(&c) != d0;
        if p.shaped && !changed {
            failures.push(format!(
                "{type_name}.{}: declared result-shaping but perturbing it left the \
                 digest unchanged — the store would serve stale trials across configs",
                p.field
            ));
        }
        if !p.shaped && changed {
            failures.push(format!(
                "{type_name}.{}: declared result-neutral but perturbing it changed the \
                 digest — neutral-field churn would orphan every warm store",
                p.field
            ));
        }
    }
    let mut shaped_fields = Vec::new();
    let mut neutral_fields = Vec::new();
    for p in perturbations {
        let list = if p.shaped { &mut shaped_fields } else { &mut neutral_fields };
        if !list.contains(&p.field) {
            list.push(p.field);
        }
    }
    BatteryReport {
        type_name,
        base_digest: d0,
        checked: perturbations.len(),
        shaped_fields,
        neutral_fields,
        failures,
    }
}

/// Declared fields of [`UarchCampaignConfig`], declaration order.
pub const UARCH_FIELDS: [&str; 15] = [
    "scale",
    "uarch",
    "points_per_workload",
    "trials_per_point",
    "warmup_cycles",
    "window_cycles",
    "drain_cycles",
    "seed",
    "target",
    "threads",
    "cutoff_stride",
    "prune",
    "map_dir",
    "ckpt_stride",
    "detectors",
];

/// Declared fields of [`ArchCampaignConfig`], declaration order.
pub const ARCH_FIELDS: [&str; 11] = [
    "scale",
    "trials_per_workload",
    "window",
    "seed",
    "low32",
    "threads",
    "cutoff_stride",
    "prune",
    "map_dir",
    "ckpt_stride",
    "detectors",
];

/// The perturbation table for the µarch campaign config. Multiple
/// perturbations per field are deliberate: `uarch` and `detectors` are
/// substructures whose every knob must rekey independently.
pub fn uarch_perturbations() -> Vec<FieldPerturbation<UarchCampaignConfig>> {
    vec![
        FieldPerturbation {
            field: "scale",
            shaped: true,
            perturb: |c| c.scale = Scale { size: c.scale.size + 1, ..c.scale },
        },
        FieldPerturbation {
            field: "scale",
            shaped: true,
            perturb: |c| c.scale = Scale { seed: c.scale.seed + 1, ..c.scale },
        },
        FieldPerturbation { field: "uarch", shaped: true, perturb: |c| c.uarch.jrs_entries += 1 },
        FieldPerturbation { field: "uarch", shaped: true, perturb: |c| c.uarch.jrs_threshold += 1 },
        FieldPerturbation {
            field: "uarch",
            shaped: true,
            perturb: |c| c.uarch.watchdog_cycles += 500,
        },
        FieldPerturbation {
            field: "points_per_workload",
            shaped: false,
            perturb: |c| c.points_per_workload += 1,
        },
        FieldPerturbation {
            field: "trials_per_point",
            shaped: false,
            perturb: |c| c.trials_per_point += 1,
        },
        FieldPerturbation {
            field: "warmup_cycles",
            shaped: false,
            perturb: |c| c.warmup_cycles += 1,
        },
        FieldPerturbation {
            field: "window_cycles",
            shaped: true,
            perturb: |c| c.window_cycles += 1,
        },
        FieldPerturbation { field: "drain_cycles", shaped: true, perturb: |c| c.drain_cycles += 1 },
        FieldPerturbation { field: "seed", shaped: false, perturb: |c| c.seed += 1 },
        FieldPerturbation {
            field: "target",
            shaped: true,
            perturb: |c| {
                c.target = match c.target {
                    InjectionTarget::AllState => InjectionTarget::LatchesOnly,
                    InjectionTarget::LatchesOnly => InjectionTarget::AllState,
                }
            },
        },
        FieldPerturbation { field: "threads", shaped: false, perturb: |c| c.threads += 1 },
        FieldPerturbation {
            field: "cutoff_stride",
            shaped: false,
            perturb: |c| c.cutoff_stride += 1,
        },
        FieldPerturbation {
            field: "prune",
            shaped: false,
            perturb: |c| c.prune = flip_prune(c.prune),
        },
        FieldPerturbation {
            field: "map_dir",
            shaped: false,
            perturb: |c| {
                c.map_dir = match c.map_dir.take() {
                    Some(_) => None,
                    None => Some("maps".into()),
                }
            },
        },
        FieldPerturbation { field: "ckpt_stride", shaped: false, perturb: |c| c.ckpt_stride += 1 },
        FieldPerturbation {
            field: "detectors",
            shaped: true,
            perturb: |c| c.detectors.sig_chunk += 16,
        },
        FieldPerturbation {
            field: "detectors",
            shaped: true,
            perturb: |c| c.detectors.dup_mask ^= 1,
        },
    ]
}

/// The perturbation table for the architectural campaign config.
pub fn arch_perturbations() -> Vec<FieldPerturbation<ArchCampaignConfig>> {
    vec![
        FieldPerturbation {
            field: "scale",
            shaped: true,
            perturb: |c| c.scale = Scale { size: c.scale.size + 1, ..c.scale },
        },
        FieldPerturbation {
            field: "trials_per_workload",
            shaped: false,
            perturb: |c| c.trials_per_workload += 1,
        },
        FieldPerturbation { field: "window", shaped: true, perturb: |c| c.window += 1 },
        FieldPerturbation { field: "seed", shaped: false, perturb: |c| c.seed += 1 },
        FieldPerturbation { field: "low32", shaped: true, perturb: |c| c.low32 = !c.low32 },
        FieldPerturbation { field: "threads", shaped: false, perturb: |c| c.threads += 1 },
        FieldPerturbation {
            field: "cutoff_stride",
            shaped: false,
            perturb: |c| c.cutoff_stride += 1,
        },
        FieldPerturbation {
            field: "prune",
            shaped: false,
            perturb: |c| c.prune = flip_prune(c.prune),
        },
        FieldPerturbation {
            field: "map_dir",
            shaped: false,
            perturb: |c| {
                c.map_dir = match c.map_dir.take() {
                    Some(_) => None,
                    None => Some("maps".into()),
                }
            },
        },
        FieldPerturbation { field: "ckpt_stride", shaped: false, perturb: |c| c.ckpt_stride += 1 },
        FieldPerturbation {
            field: "detectors",
            shaped: true,
            perturb: |c| c.detectors.sig_chunk += 16,
        },
        FieldPerturbation {
            field: "detectors",
            shaped: true,
            perturb: |c| c.detectors.dup_mask ^= 1,
        },
    ]
}

fn flip_prune(p: PruneMode) -> PruneMode {
    match p {
        PruneMode::Off => PruneMode::Interval,
        _ => PruneMode::Off,
    }
}

/// Runs the µarch table against an arbitrary base config.
pub fn uarch_battery(base: &UarchCampaignConfig) -> BatteryReport {
    run_battery(
        "UarchCampaignConfig",
        base,
        uarch_campaign_digest,
        &UARCH_FIELDS,
        &uarch_perturbations(),
    )
}

/// Runs the arch table against an arbitrary base config.
pub fn arch_battery(base: &ArchCampaignConfig) -> BatteryReport {
    run_battery(
        "ArchCampaignConfig",
        base,
        arch_campaign_digest,
        &ARCH_FIELDS,
        &arch_perturbations(),
    )
}

/// Both batteries against the default configs — the CLI's `--digests`
/// runtime leg.
pub fn default_batteries() -> Vec<BatteryReport> {
    vec![
        uarch_battery(&UarchCampaignConfig::default()),
        arch_battery(&ArchCampaignConfig::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_batteries_are_clean() {
        for r in default_batteries() {
            assert!(r.is_clean(), "{}: {:?}", r.type_name, r.failures);
        }
    }

    #[test]
    fn the_two_campaign_digests_never_collide_on_defaults() {
        let reports = default_batteries();
        assert_ne!(reports[0].base_digest, reports[1].base_digest);
    }

    #[test]
    fn a_missing_table_entry_is_a_completeness_failure() {
        let mut table = uarch_perturbations();
        table.retain(|p| p.field != "detectors");
        let r = run_battery(
            "UarchCampaignConfig",
            &UarchCampaignConfig::default(),
            uarch_campaign_digest,
            &UARCH_FIELDS,
            &table,
        );
        assert!(r.failures.iter().any(|f| f.contains("detectors")), "{:?}", r.failures);
    }

    #[test]
    fn a_misdeclared_field_is_caught() {
        // Declare `seed` shaped: the digest (correctly) ignores it, so
        // the battery must report the lie.
        let table = vec![FieldPerturbation::<UarchCampaignConfig> {
            field: "seed",
            shaped: true,
            perturb: |c| c.seed += 1,
        }];
        let r = run_battery(
            "UarchCampaignConfig",
            &UarchCampaignConfig::default(),
            uarch_campaign_digest,
            &["seed"],
            &table,
        );
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        assert!(r.failures[0].contains("left the digest unchanged"));
    }
}
