//! Determinism lint: result reproducibility by construction.
//!
//! The campaign contract — bit-identical results at any thread count,
//! byte-identical warm/cold store replays — only holds while no
//! result-shaping code path consults a nondeterministic source. This
//! token-level pass (same dependency-free style as [`crate::scanner`])
//! sweeps the campaign, bench and store crate roots for the constructs
//! that historically break that contract:
//!
//! * `HashMap`/`HashSet` — randomized iteration order; anything that is
//!   iterated for output must be a `BTreeMap`/`BTreeSet` or sort first
//!   (`hash-order`),
//! * `Instant::now`/`SystemTime` — wall-clock reads outside the
//!   accounting allowlist (`wall-clock`),
//! * `thread_rng`/`from_entropy`/`OsRng` — entropy-seeded RNGs that can
//!   never reproduce a campaign (`entropy-rng`),
//! * `seed_from_u64(<literal>)` — an RNG seeded with a hard-coded
//!   constant rather than routed through the hierarchical `Seeder`
//!   (`rng-seed-literal`); identifier arguments are assumed routed.
//!
//! A flagged construct that is genuinely harmless (keyed lookup only,
//! never iterated for output) carries an exemption on or just above its
//! line:
//!
//! ```text
//! // determinism: allow -- <reason the construct cannot shape results>
//! ```
//!
//! The reason is mandatory, a malformed comment is an error, and an
//! allow that covers no flagged site within its reach is a *dangling*
//! error — stale exemptions may not accumulate. `#[cfg(test)]` items
//! and `use` declarations are skipped: imports are not uses, and tests
//! may time and hash freely.

use crate::lex::{skip_balanced, tokenize, Tok, Token};
use crate::scanner::{Finding, Severity};
use std::path::{Path, PathBuf};

/// An `allow` directive reaches this many lines below itself.
const ALLOW_REACH: u32 = 3;

/// Files whose wall-clock reads are accounting, not results: the engine
/// and campaign drivers time themselves for `CampaignStats` throughput
/// reporting, which is explicitly outside the byte-identical surface.
const WALL_CLOCK_ALLOWLIST: [&str; 2] = ["inject/src/engine.rs", "inject/src/campaign.rs"];

/// One flagged construct before exemption matching.
struct Site {
    kind: &'static str,
    ident: String,
    line: u32,
}

/// The determinism pass result.
#[derive(Debug, Default)]
pub struct DeterminismAnalysis {
    /// Everything noteworthy, errors first.
    pub findings: Vec<Finding>,
    /// Number of `// determinism: allow` exemptions honored.
    pub allows_honored: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl DeterminismAnalysis {
    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity == Severity::Error)
    }

    /// True when no error-severity findings exist.
    pub fn is_clean(&self) -> bool {
        self.errors().count() == 0
    }
}

/// Scans every `.rs` file under the given roots.
///
/// # Errors
///
/// Returns an I/O error if a root cannot be read.
pub fn analyze_determinism_dirs(roots: &[PathBuf]) -> std::io::Result<DeterminismAnalysis> {
    let mut files = Vec::new();
    for root in roots {
        super::scanner::rust_files(root, &mut files)?;
    }
    let mut out = DeterminismAnalysis::default();
    for f in &files {
        let text = std::fs::read_to_string(f)?;
        scan_file(f, &text, &mut out);
    }
    out.files_scanned = files.len();
    sort_findings(&mut out);
    Ok(out)
}

/// Scans in-memory sources (used by tests); paths are labels only.
pub fn analyze_determinism_sources(sources: &[(&str, &str)]) -> DeterminismAnalysis {
    let mut out = DeterminismAnalysis::default();
    for (path, text) in sources {
        scan_file(Path::new(path), text, &mut out);
    }
    out.files_scanned = sources.len();
    sort_findings(&mut out);
    out
}

fn sort_findings(out: &mut DeterminismAnalysis) {
    out.findings.sort_by_key(|f| (f.severity != Severity::Error, f.file.clone(), f.line));
}

fn path_is_allowlisted(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    WALL_CLOCK_ALLOWLIST.iter().any(|sfx| p.ends_with(sfx))
}

fn scan_file(path: &Path, text: &str, out: &mut DeterminismAnalysis) {
    let (toks, directives) = tokenize(text);
    let mut allows: Vec<(u32, String, bool)> = Vec::new(); // (line, reason, used)
    for d in directives.iter().filter(|d| d.prefix == "determinism") {
        match d.reason_for("allow") {
            Ok(reason) => allows.push((d.line, reason, false)),
            Err(raw) => out.findings.push(Finding {
                severity: Severity::Error,
                kind: "malformed-determinism-exemption",
                type_name: String::new(),
                field: String::new(),
                file: path.to_path_buf(),
                line: d.line,
                detail: format!(
                    "unparseable determinism comment `// {raw}` — expected \
                     `// determinism: allow -- <reason>`"
                ),
            }),
        }
    }

    let sites = extract_sites(&toks, path);

    // Each allow exempts the first flagged site at-or-below it within
    // reach; an allow that exempts nothing is itself an error so stale
    // exemptions cannot accumulate.
    let mut exempt = vec![false; sites.len()];
    for (aline, _, used) in &mut allows {
        for (i, s) in sites.iter().enumerate() {
            if !exempt[i] && s.line >= *aline && s.line <= *aline + ALLOW_REACH {
                exempt[i] = true;
                *used = true;
                break;
            }
        }
    }
    for (aline, reason, used) in &allows {
        if !used {
            out.findings.push(Finding {
                severity: Severity::Error,
                kind: "dangling-determinism-allow",
                type_name: String::new(),
                field: String::new(),
                file: path.to_path_buf(),
                line: *aline,
                detail: format!(
                    "`// determinism: allow -- {reason}` covers no flagged construct \
                     within {ALLOW_REACH} lines — delete the stale exemption"
                ),
            });
        }
    }
    out.allows_honored += allows.iter().filter(|(_, _, used)| *used).count();

    for (i, s) in sites.iter().enumerate() {
        if exempt[i] {
            continue;
        }
        let detail = match s.kind {
            "hash-order" => format!(
                "`{}` has randomized iteration order; use `BTreeMap`/`BTreeSet` or sort \
                 before result-shaping output, or exempt a keyed-lookup-only use with \
                 `// determinism: allow -- <reason>`",
                s.ident
            ),
            "wall-clock" => format!(
                "`{}` reads the wall clock outside the accounting allowlist; results \
                 must not depend on time",
                s.ident
            ),
            "entropy-rng" => format!(
                "`{}` seeds an RNG from process entropy; campaigns must draw every seed \
                 through the hierarchical `Seeder` to stay replayable",
                s.ident
            ),
            _ => format!(
                "`{}` seeds an RNG with a hard-coded literal instead of a `Seeder`-derived \
                 value; literal seeds silently correlate campaigns",
                s.ident
            ),
        };
        out.findings.push(Finding {
            severity: Severity::Error,
            kind: s.kind,
            type_name: String::new(),
            field: s.ident.clone(),
            file: path.to_path_buf(),
            line: s.line,
            detail,
        });
    }
}

/// Walks the token stream collecting flagged constructs, skipping `use`
/// declarations and `#[cfg(test)]` items.
fn extract_sites(toks: &[Token], path: &Path) -> Vec<Site> {
    let wall_clock_ok = path_is_allowlisted(path);
    let mut sites = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            // `use std::collections::HashMap;` — an import is not a use.
            Tok::Ident(k) if k == "use" => {
                while i < toks.len() && !toks[i].tok.is_punct(';') {
                    i += 1;
                }
            }
            // `#[cfg(test)]` gates the following item out of production
            // builds; skip to the end of that item's body.
            Tok::Punct('#') if is_cfg_test(toks, i) => {
                let mut j = skip_balanced(toks, i + 1, '[', ']');
                // Further attributes may sit between the cfg and the item.
                while j < toks.len() && !toks[j].tok.is_punct('{') && !toks[j].tok.is_punct(';') {
                    if toks[j].tok.is_punct('#') {
                        j = skip_balanced(toks, j + 1, '[', ']');
                    } else {
                        j += 1;
                    }
                }
                i = if j < toks.len() && toks[j].tok.is_punct('{') {
                    skip_balanced(toks, j, '{', '}')
                } else {
                    j + 1
                };
            }
            Tok::Ident(k) if k == "HashMap" || k == "HashSet" => {
                sites.push(Site { kind: "hash-order", ident: k.clone(), line: toks[i].line });
                i += 1;
            }
            Tok::Ident(k) if (k == "Instant" || k == "SystemTime") && !wall_clock_ok => {
                sites.push(Site { kind: "wall-clock", ident: k.clone(), line: toks[i].line });
                i += 1;
            }
            Tok::Ident(k) if k == "thread_rng" || k == "from_entropy" || k == "OsRng" => {
                sites.push(Site { kind: "entropy-rng", ident: k.clone(), line: toks[i].line });
                i += 1;
            }
            Tok::Ident(k)
                if k == "seed_from_u64"
                    && toks.get(i + 1).is_some_and(|t| t.tok.is_punct('('))
                    && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Int(_))) =>
            {
                sites.push(Site { kind: "rng-seed-literal", ident: k.clone(), line: toks[i].line });
                i += 1;
            }
            _ => i += 1,
        }
    }
    sites
}

/// True when the `#` at `i` opens exactly `#[cfg(test)]`.
fn is_cfg_test(toks: &[Token], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|t| t.tok.is_punct('['))
        && toks.get(i + 2).is_some_and(|t| t.tok.is_ident("cfg"))
        && toks.get(i + 3).is_some_and(|t| t.tok.is_punct('('))
        && toks.get(i + 4).is_some_and(|t| t.tok.is_ident("test"))
        && toks.get(i + 5).is_some_and(|t| t.tok.is_punct(')'))
        && toks.get(i + 6).is_some_and(|t| t.tok.is_punct(']'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banned_constructs_are_flagged_with_their_kind() {
        let src = r#"
            fn shape() {
                let m: HashMap<u64, u64> = HashMap::new();
                let t = Instant::now();
                let r = StdRng::from_entropy();
                let s = StdRng::seed_from_u64(42);
            }
        "#;
        let a = analyze_determinism_sources(&[("x.rs", src)]);
        let kinds: Vec<_> = a.errors().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            ["hash-order", "hash-order", "wall-clock", "entropy-rng", "rng-seed-literal"]
        );
    }

    #[test]
    fn seeder_routed_rng_is_clean() {
        let src = "fn f(seed: u64) { let r = StdRng::seed_from_u64(seed); }";
        let a = analyze_determinism_sources(&[("x.rs", src)]);
        assert!(a.is_clean(), "{:?}", a.findings);
    }

    #[test]
    fn imports_and_test_modules_are_skipped() {
        let src = r#"
            use std::collections::HashMap;
            #[cfg(test)]
            mod tests {
                use std::collections::HashSet;
                #[test]
                fn t() {
                    let s: HashSet<u64> = HashSet::new();
                    let d = Instant::now();
                    let r = StdRng::seed_from_u64(7);
                }
            }
        "#;
        let a = analyze_determinism_sources(&[("x.rs", src)]);
        assert!(a.is_clean(), "{:?}", a.findings);
    }

    #[test]
    fn allow_exempts_one_site_and_must_not_dangle() {
        let src = r#"
            // determinism: allow -- keyed lookup only, never iterated for output
            type Cache = HashMap<u64, u64>;
            // determinism: allow -- exempts nothing below
            fn pure() {}
        "#;
        let a = analyze_determinism_sources(&[("x.rs", src)]);
        let errs: Vec<_> = a.errors().collect();
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert_eq!(errs[0].kind, "dangling-determinism-allow");
        assert_eq!(a.allows_honored, 1);
    }

    #[test]
    fn reasonless_allow_is_malformed() {
        let src = "// determinism: allow\nfn f() { let t = Instant::now(); }";
        let a = analyze_determinism_sources(&[("x.rs", src)]);
        let kinds: Vec<_> = a.errors().map(|e| e.kind).collect();
        assert!(kinds.contains(&"malformed-determinism-exemption"), "{kinds:?}");
        assert!(kinds.contains(&"wall-clock"), "{kinds:?}");
    }

    #[test]
    fn accounting_allowlist_admits_engine_timers() {
        let src = "fn f() { let t = Instant::now(); }";
        let a = analyze_determinism_sources(&[("crates/inject/src/engine.rs", src)]);
        assert!(a.is_clean(), "{:?}", a.findings);
    }
}
