//! Static state-coverage analyzer.
//!
//! A dependency-free, token-level scanner over the simulator sources.
//! For every type that implements `FaultState` or exposes a
//! `visit`/`visit_state`/`visit_with` method, it extracts the struct's
//! declared fields and cross-checks them against the fields the walk body
//! actually hands to the visitor:
//!
//! * `v.word(&mut self.f, …)` / `word32` / `word8` / `flag` — direct,
//! * `self.f.visit(…)` / `self.f.visit_with(…)` — nested walk,
//! * `self.f.iter_mut()` — element-wise walk of a container field.
//!
//! Any field not reached one of these ways is an error unless it carries
//! an explicit exemption comment:
//!
//! ```text
//! // audit: skip -- <reason the field is not fault-injectable state>
//! ```
//!
//! placed on the field's line or on a comment line between it and the
//! previous field. The reason is mandatory; `audit:` comments that do not
//! parse are themselves findings, so typos cannot silently waive
//! coverage. Direct visits additionally get width soundness checks:
//! a literal width must fit the visit method (`word8` ≤ 8, `word32` ≤ 32,
//! `word` ≤ 64) and the declared field type, and the method must match
//! the field's primitive type (`flag` ↔ `bool`, `word8` ↔ `u8`, …).

use crate::lex::{skip_balanced, skip_generics, tokenize, Tok, Token};
use std::fmt;
use std::path::{Path, PathBuf};

/// One declared struct field.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// Declared type, whitespace-normalized (e.g. `Vec<u8>`).
    pub ty: String,
    /// 1-based source line of the declaration.
    pub line: u32,
    /// Exemption reason, if the field carries `// audit: skip -- …`.
    pub exempt: Option<String>,
}

/// One struct with named fields.
#[derive(Debug, Clone)]
pub struct StructInfo {
    /// Type name.
    pub name: String,
    /// Source file.
    pub file: PathBuf,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Declared fields in order.
    pub fields: Vec<FieldInfo>,
}

/// How a walk body reaches a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisitKind {
    /// `v.word(&mut self.f, …)` and friends.
    Direct,
    /// `self.f.visit(…)` / `self.f.visit_with(…)`.
    Nested,
    /// `self.f.iter_mut()` element-wise walk.
    Iterated,
}

/// One coverage site inside a walk body.
#[derive(Debug, Clone)]
pub struct VisitSite {
    /// Field reached.
    pub field: String,
    /// How it was reached.
    pub kind: VisitKind,
    /// Visitor method for direct sites (`word`, `word32`, `word8`, `flag`).
    pub method: Option<String>,
    /// Literal width argument, when present and literal.
    pub width: Option<u64>,
    /// Source line of the site.
    pub line: u32,
}

/// One `visit`/`visit_state`/`visit_with` body attached to a type.
#[derive(Debug, Clone)]
pub struct WalkInfo {
    /// Target type name.
    pub type_name: String,
    /// Walk method name.
    pub method: String,
    /// `true` when the walk came from an `impl FaultState for …` block.
    pub from_fault_state_impl: bool,
    /// Source file.
    pub file: PathBuf,
    /// 1-based line of the `fn`.
    pub line: u32,
    /// Coverage sites extracted from the body.
    pub sites: Vec<VisitSite>,
}

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails `--check`.
    Error,
    /// Reported but does not fail the build.
    Note,
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Error or note.
    pub severity: Severity,
    /// Machine-readable kind (`unvisited-field`, `width-overflow`, …).
    pub kind: &'static str,
    /// Owning type, when applicable.
    pub type_name: String,
    /// Field, when applicable.
    pub field: String,
    /// Source file.
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Note => "note",
        };
        let subject = if self.field.is_empty() {
            self.type_name.clone()
        } else {
            format!("{}.{}", self.type_name, self.field)
        };
        write!(
            f,
            "{sev}[{}]: {} — {}\n  --> {}:{}",
            self.kind,
            subject,
            self.detail,
            self.file.display(),
            self.line
        )
    }
}

/// Everything the analyzer learned about one file.
#[derive(Debug, Default)]
struct FileFacts {
    structs: Vec<StructInfo>,
    walks: Vec<WalkInfo>,
    malformed: Vec<(PathBuf, u32, String)>,
}

/// Full analysis result over a set of roots.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Structs seen, by declaration order across files.
    pub structs: Vec<StructInfo>,
    /// Walk bodies seen.
    pub walks: Vec<WalkInfo>,
    /// Findings, errors first.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Findings that fail `--check`.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity == Severity::Error)
    }

    /// `true` when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }
}

/// Recursively collects `.rs` files under `root`, sorted for determinism.
pub(crate) fn rust_files(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(root)?.collect::<Result<Vec<_>, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            rust_files(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Scans every `.rs` file under the given roots and cross-checks field
/// coverage.
///
/// # Errors
///
/// Returns an I/O error if a root cannot be read.
pub fn analyze_dirs(roots: &[PathBuf]) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    for root in roots {
        rust_files(root, &mut files)?;
    }
    let mut facts = FileFacts::default();
    for f in &files {
        let text = std::fs::read_to_string(f)?;
        scan_file(f, &text, &mut facts);
    }
    Ok(cross_check(facts, files.len()))
}

/// Scans in-memory sources (used by tests); paths are labels only.
pub fn analyze_sources(sources: &[(&str, &str)]) -> Analysis {
    let mut facts = FileFacts::default();
    for (path, text) in sources {
        scan_file(Path::new(path), text, &mut facts);
    }
    cross_check(facts, sources.len())
}

fn scan_file(path: &Path, text: &str, facts: &mut FileFacts) {
    let (toks, directives) = tokenize(text);
    let mut skips: Vec<(u32, String)> = Vec::new();
    for d in directives.iter().filter(|d| d.prefix == "audit") {
        match d.reason_for("skip") {
            Ok(reason) => skips.push((d.line, reason)),
            Err(raw) => facts.malformed.push((path.to_path_buf(), d.line, raw)),
        }
    }
    parse_items(path, &toks, &skips, facts);
}

fn parse_items(path: &Path, toks: &[Token], skips: &[(u32, String)], facts: &mut FileFacts) {
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Ident(k) if k == "struct" => {
                i = parse_struct(path, toks, i, skips, facts);
            }
            Tok::Ident(k) if k == "impl" => {
                i = parse_impl(path, toks, i, facts);
            }
            _ => i += 1,
        }
    }
}

/// Parses `struct Name { … }` starting at the `struct` keyword; returns
/// the index after the item. Tuple and unit structs are skipped.
fn parse_struct(
    path: &Path,
    toks: &[Token],
    start: usize,
    skips: &[(u32, String)],
    facts: &mut FileFacts,
) -> usize {
    let mut i = start + 1;
    let Some(name) = toks.get(i).and_then(|t| t.tok.ident().map(String::from)) else {
        return i;
    };
    let decl_line = toks[start].line;
    i = skip_generics(toks, i + 1);
    // Skip a `where` clause if present.
    while i < toks.len() && !toks[i].tok.is_punct('{') {
        if toks[i].tok.is_punct(';') || toks[i].tok.is_punct('(') {
            return i; // unit or tuple struct
        }
        i += 1;
    }
    if i >= toks.len() {
        return i;
    }
    let body_end = skip_balanced(toks, i, '{', '}');
    let mut fields = Vec::new();
    let mut j = i + 1;
    let mut prev_field_line = decl_line;
    while j < body_end - 1 {
        // Skip attributes.
        if toks[j].tok.is_punct('#') {
            j += 1;
            if j < body_end && toks[j].tok.is_punct('[') {
                j = skip_balanced(toks, j, '[', ']');
            }
            continue;
        }
        // Skip visibility.
        if toks[j].tok.is_ident("pub") {
            j += 1;
            if j < body_end && toks[j].tok.is_punct('(') {
                j = skip_balanced(toks, j, '(', ')');
            }
            continue;
        }
        // Field: `name : type ,`
        if let Some(fname) = toks[j].tok.ident() {
            let fline = toks[j].line;
            if j + 1 < body_end && toks[j + 1].tok.is_punct(':') {
                let mut k = j + 2;
                let mut ty = String::new();
                let mut angle = 0i32;
                let mut paren = 0i32;
                let mut bracket = 0i32;
                while k < body_end - 1 {
                    match &toks[k].tok {
                        Tok::Punct(',') if angle == 0 && paren == 0 && bracket == 0 => break,
                        Tok::Punct(c) => {
                            match c {
                                '<' => angle += 1,
                                '>' => angle -= 1,
                                '(' => paren += 1,
                                ')' => paren -= 1,
                                '[' => bracket += 1,
                                ']' => bracket -= 1,
                                _ => {}
                            }
                            ty.push(*c);
                        }
                        Tok::Ident(id) => {
                            if !ty.is_empty() && ty.ends_with(char::is_alphanumeric) {
                                ty.push(' ');
                            }
                            ty.push_str(id);
                        }
                        Tok::Int(v) => {
                            if !ty.is_empty() && ty.ends_with(char::is_alphanumeric) {
                                ty.push(' ');
                            }
                            ty.push_str(&v.to_string());
                        }
                        Tok::Other => ty.push('?'),
                    }
                    k += 1;
                }
                // A directive attaches to the first field at or below it:
                // either on a line of its own between two fields, or
                // trailing on the field's own line.
                let exempt = skips
                    .iter()
                    .find(|(l, _)| (*l > prev_field_line && *l <= fline) || *l == fline)
                    .map(|(_, r)| r.clone());
                fields.push(FieldInfo { name: fname.to_string(), ty, line: fline, exempt });
                prev_field_line = fline;
                j = k + 1;
                continue;
            }
        }
        j += 1;
    }
    facts.structs.push(StructInfo { name, file: path.to_path_buf(), line: decl_line, fields });
    body_end
}

/// Parses an `impl` block starting at the `impl` keyword; extracts walk
/// bodies. Returns the index after the block.
fn parse_impl(path: &Path, toks: &[Token], start: usize, facts: &mut FileFacts) -> usize {
    let mut i = skip_generics(toks, start + 1);
    // Head: everything up to `{`, split on `for`.
    let mut head: Vec<&Token> = Vec::new();
    let mut for_pos: Option<usize> = None;
    let mut angle = 0i32;
    while i < toks.len() && !(angle == 0 && toks[i].tok.is_punct('{')) {
        match &toks[i].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Ident(k) if k == "for" && angle == 0 => for_pos = Some(head.len()),
            _ => {}
        }
        head.push(&toks[i]);
        i += 1;
    }
    if i >= toks.len() {
        return i;
    }
    let (trait_toks, type_toks) = match for_pos {
        Some(p) => (&head[..p], &head[p + 1..]),
        None => (&[] as &[&Token], &head[..]),
    };
    let from_fault_state_impl =
        trait_toks.iter().rev().find_map(|t| t.tok.ident()).is_some_and(|id| id == "FaultState");
    let type_name = type_toks.iter().find_map(|t| t.tok.ident()).unwrap_or("").to_string();
    let body_end = skip_balanced(toks, i, '{', '}');
    if type_name.is_empty() {
        return body_end;
    }

    // Find `fn visit…` at depth 1 of the impl body.
    let mut depth = 0i32;
    let mut j = i;
    while j < body_end {
        match &toks[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => depth -= 1,
            Tok::Ident(k) if k == "fn" && depth == 1 => {
                let name = toks
                    .get(j + 1)
                    .and_then(|t| t.tok.ident().map(String::from))
                    .unwrap_or_default();
                if matches!(name.as_str(), "visit" | "visit_state" | "visit_with") {
                    let fn_line = toks[j].line;
                    // Skip to parameter list, then past it.
                    let mut k = j + 2;
                    while k < body_end && !toks[k].tok.is_punct('(') {
                        k += 1;
                    }
                    k = skip_balanced(toks, k, '(', ')');
                    // Skip return type up to the body brace.
                    while k < body_end && !toks[k].tok.is_punct('{') {
                        k += 1;
                    }
                    let fn_end = skip_balanced(toks, k, '{', '}');
                    let sites = extract_sites(&toks[k..fn_end]);
                    facts.walks.push(WalkInfo {
                        type_name: type_name.clone(),
                        method: name,
                        from_fault_state_impl,
                        file: path.to_path_buf(),
                        line: fn_line,
                        sites,
                    });
                    // `depth` bookkeeping: we consumed the whole fn body.
                    j = fn_end;
                    continue;
                }
            }
            _ => {}
        }
        j += 1;
    }
    body_end
}

const DIRECT_METHODS: [&str; 4] = ["word", "word32", "word8", "flag"];

/// Extracts coverage sites from a walk body token stream.
fn extract_sites(body: &[Token]) -> Vec<VisitSite> {
    let mut sites = Vec::new();
    for w in 0..body.len() {
        // Direct: `. METHOD ( & mut self . FIELD [, WIDTH]`
        if body[w].tok.is_punct('.') {
            if let Some(m) = body.get(w + 1).and_then(|t| t.tok.ident()) {
                if DIRECT_METHODS.contains(&m)
                    && body.get(w + 2).is_some_and(|t| t.tok.is_punct('('))
                    && body.get(w + 3).is_some_and(|t| t.tok.is_punct('&'))
                    && body.get(w + 4).is_some_and(|t| t.tok.is_ident("mut"))
                    && body.get(w + 5).is_some_and(|t| t.tok.is_ident("self"))
                    && body.get(w + 6).is_some_and(|t| t.tok.is_punct('.'))
                {
                    if let Some(field) = body.get(w + 7).and_then(|t| t.tok.ident()) {
                        // A deeper path (`self.a.b`) is not a plain field
                        // visit; record the head field as Nested-like
                        // coverage only if followed by `,` or `)`.
                        let next = body.get(w + 8).map(|t| &t.tok);
                        let terminates = matches!(next, Some(Tok::Punct(',' | ')')));
                        if terminates {
                            let width = if m == "flag" {
                                Some(1)
                            } else {
                                match body.get(w + 9).map(|t| &t.tok) {
                                    Some(Tok::Int(v))
                                        if body
                                            .get(w + 10)
                                            .is_some_and(|t| t.tok.is_punct(',')) =>
                                    {
                                        Some(*v)
                                    }
                                    _ => None,
                                }
                            };
                            sites.push(VisitSite {
                                field: field.to_string(),
                                kind: VisitKind::Direct,
                                method: Some(m.to_string()),
                                width,
                                line: body[w].line,
                            });
                        }
                    }
                }
            }
        }
        // Nested / iterated: `self . FIELD . (visit|visit_with|iter_mut) (`
        if body[w].tok.is_ident("self") && body.get(w + 1).is_some_and(|t| t.tok.is_punct('.')) {
            if let Some(field) = body.get(w + 2).and_then(|t| t.tok.ident()) {
                if body.get(w + 3).is_some_and(|t| t.tok.is_punct('.'))
                    && body.get(w + 5).is_some_and(|t| t.tok.is_punct('('))
                {
                    if let Some(m) = body.get(w + 4).and_then(|t| t.tok.ident()) {
                        let kind = match m {
                            "visit" | "visit_with" => Some(VisitKind::Nested),
                            "iter_mut" => Some(VisitKind::Iterated),
                            _ => None,
                        };
                        if let Some(kind) = kind {
                            sites.push(VisitSite {
                                field: field.to_string(),
                                kind,
                                method: None,
                                width: None,
                                line: body[w].line,
                            });
                        }
                    }
                }
            }
        }
    }
    sites
}

/// Bit capacity of a primitive type name, if recognized.
fn bits_of(ty: &str) -> Option<u64> {
    match ty {
        "bool" => Some(1),
        "u8" => Some(8),
        "u16" => Some(16),
        "u32" => Some(32),
        "u64" | "usize" => Some(64),
        _ => None,
    }
}

/// Method → required primitive type and width cap.
fn method_contract(method: &str) -> (&'static str, u64) {
    match method {
        "flag" => ("bool", 1),
        "word8" => ("u8", 8),
        "word32" => ("u32", 32),
        _ => ("u64", 64),
    }
}

fn cross_check(facts: FileFacts, files_scanned: usize) -> Analysis {
    let mut findings = Vec::new();
    for (file, line, raw) in &facts.malformed {
        findings.push(Finding {
            severity: Severity::Error,
            kind: "malformed-exemption",
            type_name: String::new(),
            field: String::new(),
            file: file.clone(),
            line: *line,
            detail: format!(
                "unparseable audit directive `// {raw}`; the grammar is \
                 `// audit: skip -- <reason>` with a non-empty reason"
            ),
        });
    }

    // Types with at least one walk get checked. Walks are grouped by
    // type name; the struct definition is preferred from the same file.
    let mut checked: Vec<&str> = Vec::new();
    for walk in &facts.walks {
        if checked.contains(&walk.type_name.as_str()) {
            continue;
        }
        checked.push(&walk.type_name);
        let walks: Vec<&WalkInfo> =
            facts.walks.iter().filter(|w| w.type_name == walk.type_name).collect();
        let def = facts
            .structs
            .iter()
            .find(|s| s.name == walk.type_name && s.file == walk.file)
            .or_else(|| facts.structs.iter().find(|s| s.name == walk.type_name));
        let Some(def) = def else {
            findings.push(Finding {
                severity: Severity::Note,
                kind: "no-struct-definition",
                type_name: walk.type_name.clone(),
                field: String::new(),
                file: walk.file.clone(),
                line: walk.line,
                detail: "walk target has no named-field struct definition in the scanned \
                         set (tuple struct, enum, or external type); coverage not checked"
                    .to_string(),
            });
            continue;
        };

        for f in &def.fields {
            let sites: Vec<&VisitSite> =
                walks.iter().flat_map(|w| w.sites.iter()).filter(|s| s.field == f.name).collect();
            match (&f.exempt, sites.is_empty()) {
                (None, true) => findings.push(Finding {
                    severity: Severity::Error,
                    kind: "unvisited-field",
                    type_name: def.name.clone(),
                    field: f.name.clone(),
                    file: def.file.clone(),
                    line: f.line,
                    detail: format!(
                        "declared in `{}` but never passed to the state visitor in {}; \
                         add it to the walk or exempt it with `// audit: skip -- <reason>`",
                        def.name,
                        walks
                            .iter()
                            .map(|w| format!("`{}::{}`", w.type_name, w.method))
                            .collect::<Vec<_>>()
                            .join(", "),
                    ),
                }),
                (Some(reason), false) => findings.push(Finding {
                    severity: Severity::Error,
                    kind: "exempt-but-visited",
                    type_name: def.name.clone(),
                    field: f.name.clone(),
                    file: def.file.clone(),
                    line: f.line,
                    detail: format!(
                        "exempted (\"{reason}\") but the walk visits it anyway; drop the \
                         stale exemption so coverage intent stays accurate"
                    ),
                }),
                _ => {}
            }

            // Width/type soundness on direct sites.
            for s in sites.iter().filter(|s| s.kind == VisitKind::Direct) {
                let method = s.method.as_deref().unwrap_or("word");
                let (want_ty, cap) = method_contract(method);
                if let Some(w) = s.width {
                    if w == 0 {
                        findings.push(width_finding(
                            def,
                            f,
                            s,
                            format!("`{method}` called with zero width — a field of no bits"),
                        ));
                    } else if w > cap {
                        findings.push(width_finding(
                            def,
                            f,
                            s,
                            format!(
                                "`{method}` called with width {w}, but the method caps at {cap}"
                            ),
                        ));
                    }
                    if let Some(tbits) = bits_of(&f.ty) {
                        if w > tbits {
                            findings.push(width_finding(
                                def, f, s,
                                format!(
                                    "declared width {w} exceeds the {tbits} bits of field type `{}`",
                                    f.ty
                                ),
                            ));
                        }
                    }
                }
                if bits_of(&f.ty).is_some() && f.ty != want_ty {
                    findings.push(width_finding(
                        def,
                        f,
                        s,
                        format!(
                            "visited via `{method}` (which takes `{want_ty}`) but declared as `{}`",
                            f.ty
                        ),
                    ));
                }
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.severity == Severity::Note, a.file.clone(), a.line).cmp(&(
            b.severity == Severity::Note,
            b.file.clone(),
            b.line,
        ))
    });
    Analysis { structs: facts.structs, walks: facts.walks, findings, files_scanned }
}

fn width_finding(def: &StructInfo, f: &FieldInfo, s: &VisitSite, detail: String) -> Finding {
    Finding {
        severity: Severity::Error,
        kind: "width-unsound",
        type_name: def.name.clone(),
        field: f.name.clone(),
        file: def.file.clone(),
        line: s.line,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = r#"
        pub struct Entry {
            pub valid: bool,
            pub word: u32,
            /// Age (artifact).
            // audit: skip -- simulation artifact
            pub seq: u64,
            pub tags: Vec<u8>,
            pub pred: PredInfo,
        }
        impl Entry {
            pub fn visit<V: StateVisitor>(&mut self, v: &mut V) {
                v.flag(&mut self.valid);
                v.word32(&mut self.word, 32, FieldClass::Control);
                for t in self.tags.iter_mut() {
                    v.word8(t, 7, FieldClass::Control);
                }
                self.pred.visit(v);
            }
        }
    "#;

    #[test]
    fn clean_struct_has_no_findings() {
        let a = analyze_sources(&[("clean.rs", CLEAN)]);
        assert!(a.is_clean(), "{:#?}", a.findings);
        assert_eq!(a.structs.len(), 1);
        assert_eq!(a.walks.len(), 1);
        assert_eq!(a.walks[0].sites.len(), 4);
    }

    #[test]
    fn unvisited_field_is_reported_with_location() {
        let src = r#"
            struct Hole { a: u64, missing: u8 }
            impl FaultState for Hole {
                fn visit_state<V: StateVisitor>(&mut self, v: &mut V) {
                    v.region("hole", StateKind::Latch);
                    v.word(&mut self.a, 64, FieldClass::Data);
                }
            }
        "#;
        let a = analyze_sources(&[("hole.rs", src)]);
        let f = a.errors().next().expect("a finding");
        assert_eq!(f.kind, "unvisited-field");
        assert_eq!(f.type_name, "Hole");
        assert_eq!(f.field, "missing");
        assert_eq!(f.line, 2);
        assert!(a.walks[0].from_fault_state_impl);
    }

    #[test]
    fn width_overflow_and_type_mismatch_are_reported() {
        let src = r#"
            struct W { a: u8, b: u32 }
            impl W {
                fn visit<V: StateVisitor>(&mut self, v: &mut V) {
                    v.word8(&mut self.a, 9, FieldClass::Control);
                    v.word8(&mut self.b, 3, FieldClass::Control);
                }
            }
        "#;
        let a = analyze_sources(&[("w.rs", src)]);
        let kinds: Vec<_> = a.errors().map(|f| (f.kind, f.field.as_str())).collect();
        assert!(kinds.contains(&("width-unsound", "a")), "{kinds:?}");
        assert!(kinds.contains(&("width-unsound", "b")), "{kinds:?}");
    }

    #[test]
    fn stale_exemption_is_reported() {
        let src = r#"
            struct S {
                // audit: skip -- claimed dead
                a: u64,
            }
            impl S {
                fn visit<V: StateVisitor>(&mut self, v: &mut V) {
                    v.word(&mut self.a, 64, FieldClass::Data);
                }
            }
        "#;
        let a = analyze_sources(&[("s.rs", src)]);
        assert_eq!(a.errors().next().map(|f| f.kind), Some("exempt-but-visited"));
    }

    #[test]
    fn malformed_exemption_is_an_error() {
        let src = r#"
            struct S {
                // audit: skip
                a: u64,
            }
            impl S {
                fn visit<V: StateVisitor>(&mut self, v: &mut V) {}
            }
        "#;
        let a = analyze_sources(&[("s.rs", src)]);
        let kinds: Vec<_> = a.errors().map(|f| f.kind).collect();
        assert!(kinds.contains(&"malformed-exemption"), "{kinds:?}");
        assert!(kinds.contains(&"unvisited-field"), "{kinds:?}");
    }

    #[test]
    fn exemption_reason_waives_coverage() {
        let src = r#"
            struct S {
                // audit: skip -- scratch, never read
                a: u64,
                b: bool,
            }
            impl S {
                fn visit<V: StateVisitor>(&mut self, v: &mut V) {
                    v.flag(&mut self.b);
                }
            }
        "#;
        let a = analyze_sources(&[("s.rs", src)]);
        assert!(a.is_clean(), "{:#?}", a.findings);
    }

    #[test]
    fn tuple_struct_walk_is_a_note_not_an_error() {
        let src = r#"
            struct One<T>(T);
            impl FaultState for One<u64> {
                fn visit_state<V: StateVisitor>(&mut self, v: &mut V) {
                    v.word(&mut self.0, 64, FieldClass::Data);
                }
            }
        "#;
        let a = analyze_sources(&[("one.rs", src)]);
        assert!(a.is_clean());
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].kind, "no-struct-definition");
    }

    #[test]
    fn trailing_same_line_exemption_attaches() {
        let src = "struct S { a: u64, // audit: skip -- same line\n }\n\
                   impl S { fn visit<V: StateVisitor>(&mut self, v: &mut V) {} }";
        let a = analyze_sources(&[("s.rs", src)]);
        assert!(a.is_clean(), "{:#?}", a.findings);
    }

    #[test]
    fn lifetimes_and_char_literals_do_not_derail_tokenizer() {
        let src = r#"
            struct P<'a> { live: &'a [bool], idx: u64 }
            impl<'a> P<'a> {
                fn visit<V: StateVisitor>(&mut self, v: &mut V) {
                    let _c = 'x';
                    let _s = "a \" b";
                    v.word(&mut self.idx, 64, FieldClass::Data);
                    for l in self.live.iter_mut() { v.flag(l); }
                }
            }
        "#;
        let a = analyze_sources(&[("p.rs", src)]);
        assert!(a.is_clean(), "{:#?}", a.findings);
    }
}
