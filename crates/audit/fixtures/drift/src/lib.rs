//! Deliberately drifted state walks, scanned (never compiled) by the
//! `restore-audit` tests. Each defect here must keep producing its
//! finding — if the scanner stops seeing them, the scanner regressed,
//! not this file.

/// A widget whose walk forgot a field.
pub struct DriftWidget {
    /// Covered.
    pub valid: bool,
    /// Covered.
    pub payload: u64,
    /// NOT covered by the walk below and NOT exempted: the scanner must
    /// report `unvisited-field` for `DriftWidget.dropped_tag` at this
    /// declaration's line.
    pub dropped_tag: u8,
    /// Exempted with a reason: no finding.
    // audit: skip -- scratch buffer, rewritten before every read
    pub scratch: u64,
}

impl FaultState for DriftWidget {
    fn visit_state<V: StateVisitor>(&mut self, v: &mut V) {
        v.region("drift-widget", StateKind::Latch);
        v.flag(&mut self.valid);
        v.word(&mut self.payload, 64, FieldClass::Data);
    }
}

/// A snapshot-metadata record whose walk forgot the capture
/// fingerprint — the exact defect that would let a corrupted checkpoint
/// restore pass verification silently.
pub struct StaleMeta {
    /// Covered.
    pub coord: u64,
    /// NOT covered by the walk below and NOT exempted: the scanner must
    /// report `unvisited-field` for `StaleMeta.capture_fingerprint`.
    pub capture_fingerprint: u64,
    /// Exempted usage counter (mirrors the live `SnapshotMeta.serves`).
    // audit: skip -- serve counter, not captured machine state
    pub serves: u64,
}

impl StaleMeta {
    pub fn visit<V: StateVisitor>(&mut self, v: &mut V) {
        v.region("stale-meta", StateKind::Ram);
        v.word(&mut self.coord, 64, FieldClass::Data);
    }
}

/// A trial-store content address whose walk forgot the campaign-config
/// digest — the exact defect that would let records from different
/// campaigns collide under one key and replay the wrong outcome.
pub struct DriftKey {
    /// NOT covered by the walk below and NOT exempted: the scanner must
    /// report `unvisited-field` for `DriftKey.config`.
    pub config: u64,
    /// Covered.
    pub workload: u64,
    /// Covered.
    pub point: u64,
    /// Covered.
    pub seed: u64,
}

impl DriftKey {
    pub fn visit<V: StateVisitor>(&mut self, v: &mut V) {
        v.region("drift-key", StateKind::Ram);
        v.word(&mut self.workload, 64, FieldClass::Data);
        v.word(&mut self.point, 64, FieldClass::Data);
        v.word(&mut self.seed, 64, FieldClass::Data);
    }
}

/// A widget that over-declares a width.
pub struct WidthBuster {
    /// Visited via `word8` with width 9 — the scanner must report
    /// `width-unsound`.
    pub tag: u8,
}

impl WidthBuster {
    pub fn visit<V: StateVisitor>(&mut self, v: &mut V) {
        v.word8(&mut self.tag, 9, FieldClass::Control);
    }
}
