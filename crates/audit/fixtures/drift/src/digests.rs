//! Deliberately unsound digests and banned nondeterministic constructs,
//! scanned (never compiled) by the `restore-audit` tests. Like
//! `lib.rs`, every defect here must keep producing its finding — if a
//! pass stops seeing one, the pass regressed, not this file.
//!
//! None of these structs carries a state walk, so the state-coverage
//! scanner must see nothing here and `lib.rs`'s exact defect count is
//! unaffected.

/// A campaign config whose digest forgot a field — the exact defect
/// that would let two different campaigns collide on one store key.
pub struct CanaryCfg {
    /// Folded below: no finding.
    pub window: u64,
    /// NOT folded by the digest below and NOT exempted: the digest
    /// pass must report `unfolded-field` for `CanaryCfg.forgotten`.
    pub forgotten: u64,
    /// Carries a reasonless exemption: the comment itself is a
    /// `malformed-digest-exemption` finding AND exempts nothing, so
    /// `threads` is also an `unfolded-field` finding.
    // digest: neutral
    pub threads: usize,
}

pub fn canary_campaign_digest(cfg: &CanaryCfg) -> u64 {
    ConfigDigest::new().text("canary").word(cfg.window).finish()
}

/// A config whose exemption lies: the field claims to be neutral but
/// IS folded — the digest pass must report `neutral-but-folded`.
pub struct LyingCfg {
    // digest: neutral -- claims neutrality while the fold below disagrees
    pub stride: u64,
}

pub fn lying_campaign_digest(cfg: &LyingCfg) -> u64 {
    ConfigDigest::new().word(cfg.stride).finish()
}

/// Banned-construct canaries for the determinism lint, one finding per
/// line so the exact-count test stays legible.
pub fn nondeterministic_soup() -> u64 {
    let map = HashMap::<u64, u64>::new();
    let when = Instant::now();
    let mut rng = thread_rng();
    let seeded = StdRng::seed_from_u64(42);
    map.len() as u64 + when.elapsed().as_secs() + rng.next() + seeded.next()
}

/// A correctly exempted keyed-lookup cache: the `allow` below must be
/// honored (no finding, one exemption counted).
// determinism: allow -- keyed lookup only; fixture twin of the snapshot cache
pub type KeyedCache = HashSet<u64>;

/// This allow covers nothing within reach: the lint must report
/// `dangling-determinism-allow` so stale exemptions cannot pile up.
// determinism: allow -- exempts nothing and must be flagged as dangling
pub fn perfectly_deterministic() -> u64 {
    7
}

/// A reasonless allow: `malformed-determinism-exemption`, and the
/// wall-clock read it fails to cover is still a finding.
// determinism: allow
pub fn reasonless() -> u64 {
    SystemTime::now().elapsed().as_secs()
}
