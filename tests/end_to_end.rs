//! Workspace-level integration: the full stack from assembler to
//! reliability model, exercised the way the benchmark harness uses it.

use restore::arch::{Cpu, RunExit};
use restore::core::{RestoreConfig, RestoreController, RestoreOutcome};
use restore::inject::{
    run_arch_campaign, run_uarch_campaign, ArchCampaignConfig, CfvMode, UarchCampaignConfig,
};
use restore::perf::{profile_all, PerfModel, Policy};
use restore::uarch::{Pipeline, Stop, UarchConfig};
use restore::workloads::{Scale, WorkloadId};

/// Both simulators agree with each other and with the Rust mirrors on the
/// complete output of every workload.
#[test]
fn three_way_agreement_on_every_workload() {
    let scale = Scale { size: 20, seed: 12 };
    for id in WorkloadId::ALL {
        let program = id.build(scale);
        let expected = id.expected(scale);

        let mut cpu = Cpu::new(&program);
        assert_eq!(cpu.run(20_000_000).unwrap(), RunExit::Halted, "{id} (arch)");
        assert_eq!(cpu.output(), &[expected], "{id} (arch)");

        let mut pipe = Pipeline::new(UarchConfig::default(), &program);
        while pipe.status() == Stop::Running {
            pipe.cycle();
        }
        assert_eq!(pipe.status(), Stop::Halted, "{id} (uarch)");
        assert_eq!(pipe.output(), &[expected], "{id} (uarch)");
        assert_eq!(cpu.retired(), pipe.retired(), "{id}: retired counts differ");
    }
}

/// The ReStore controller is output-transparent over the whole suite.
#[test]
fn restore_is_transparent_end_to_end() {
    let scale = Scale { size: 20, seed: 12 };
    for id in WorkloadId::ALL {
        let program = id.build(scale);
        let pipe = Pipeline::new(UarchConfig::default(), &program);
        let mut c = RestoreController::new(pipe, RestoreConfig::default());
        assert_eq!(c.run(60_000_000), RestoreOutcome::Halted, "{id}");
        assert_eq!(c.output(), &[id.expected(scale)], "{id}");
    }
}

/// A miniature end-to-end evaluation: campaign → coverage → FIT model,
/// reproducing the monotone structure of the paper's headline table.
#[test]
fn campaign_coverage_feeds_fit_model_consistently() {
    let cfg = UarchCampaignConfig {
        points_per_workload: 3,
        trials_per_point: 8,
        window_cycles: 4_000,
        ..UarchCampaignConfig::default()
    };
    let trials = run_uarch_campaign(&cfg);
    assert!(trials.len() >= 100);

    let frac = |cfv, hardened| {
        let failures = trials
            .iter()
            .filter(|t| {
                let c = t.classify(100, cfv, hardened);
                c.is_failure() && !c.is_covered()
            })
            .count();
        (failures as f64 / trials.len() as f64).max(1e-4)
    };
    let baseline = {
        let failures = trials.iter().filter(|t| t.is_failure()).count();
        (failures as f64 / trials.len() as f64).max(1e-4)
    };
    let restore_only = frac(CfvMode::HighConfidence, false);
    let lhf_restore = frac(CfvMode::HighConfidence, true);

    // Monotonicity of protection, as in Figure 6.
    assert!(restore_only <= baseline + 1e-9);
    assert!(lhf_restore <= restore_only + 1e-9);

    // The FIT model accepts the measured fractions and orders MTBFs.
    let scaling = restore::core::FitScaling::new(baseline, restore_only, baseline, lhf_restore);
    assert!(scaling.mtbf_improvement() >= 1.0);
    let rows = scaling.series(&restore::core::fit::figure8_sizes());
    assert_eq!(rows.len(), 10);
}

/// Figure 2's headline: most failing architectural faults raise a symptom
/// within a short latency.
#[test]
fn arch_campaign_symptoms_are_fast() {
    let cfg = ArchCampaignConfig {
        scale: Scale { size: 20, seed: 5 },
        trials_per_workload: 30,
        window: 150_000,
        seed: 11,
        ..ArchCampaignConfig::default()
    };
    let trials = run_arch_campaign(&cfg);
    let failing: Vec<_> = trials.iter().filter(|t| !t.masked).collect();
    assert!(!failing.is_empty());
    let sym100 = failing
        .iter()
        .filter(|t| {
            matches!(
                t.classify(100),
                restore::inject::ArchCategory::Exception | restore::inject::ArchCategory::Cfv
            )
        })
        .count();
    let sym_total = failing
        .iter()
        .filter(|t| t.symptoms.exception.is_some() || t.symptoms.cfv.is_some())
        .count();
    // Most symptomatic trials fire within 100 instructions (the paper:
    // "the majority of the coverage is still obtained with relatively
    // short latency").
    assert!(
        sym100 * 3 >= sym_total * 2,
        "only {sym100}/{sym_total} symptoms within 100 instructions"
    );
}

/// The performance model reproduces the imm/delayed crossover from
/// measured profiles.
#[test]
fn perf_model_crossover_with_real_profiles() {
    let profiles = profile_all(Scale::campaign(), &UarchConfig::default(), 80_000);
    let m = PerfModel::default();
    let imm50 = m.mean_speedup(&profiles, 50, Policy::Immediate);
    let del50 = m.mean_speedup(&profiles, 50, Policy::Delayed);
    assert!(imm50 >= del50, "imm must win at small intervals");
    let imm1000 = m.mean_speedup(&profiles, 1000, Policy::Immediate);
    let del1000 = m.mean_speedup(&profiles, 1000, Policy::Delayed);
    assert!(del1000 >= imm1000, "delayed must win at large intervals");
    // Sanity on absolute scale.
    let at100 = m.mean_speedup(&profiles, 100, Policy::Immediate);
    assert!((0.8..=1.0).contains(&at100));
}

/// Facade re-exports stay wired.
#[test]
fn facade_reexports() {
    let _ = restore::isa::Reg::SP;
    let _ = restore::arch::Perm::RW;
    let _ = restore::core::SymptomConfig::paper();
    let _ = restore::uarch::UarchConfig::default();
    let _ = restore::workloads::Scale::smoke();
    let _ = restore::inject::UarchCampaignConfig::default();
    let _ = restore::perf::PerfModel::default();
}
