//! Offline stand-in for the subset of `criterion` 0.5 this workspace
//! uses. It is a real harness — each `bench_function` runs one warm-up
//! iteration then `sample_size` timed iterations and reports min /
//! median / mean wall-clock time plus throughput — but it performs no
//! outlier analysis, keeps no history, and draws no plots.
//!
//! If `CRITERION_JSON` is set, every measurement is appended to that
//! file as one JSON object per line (used to record campaign baselines
//! in `BENCH_campaign.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export-compatible opaque value sink (prevents constant folding).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration (trials, instructions, …).
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the shim times every routine
/// call individually, so the hint is accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times a single benchmark's iterations.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Runs `routine` once for warm-up, then `target` timed iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.target {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Like [`Bencher::iter`] with untimed per-iteration setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.target {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// The benchmark registry/driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    /// Accepted and ignored (harness CLI args are not parsed).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: self.sample_size.unwrap_or(10),
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark (an implicit single-entry group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// A named group sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its report line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl AsRef<str>, mut f: F) {
        let mut b = Bencher { samples: Vec::new(), target: self.sample_size };
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            return;
        }
        s.sort_unstable();
        let min = s[0];
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<Duration>() / s.len() as u32;
        let full = if self.name.is_empty() {
            id.as_ref().to_string()
        } else {
            format!("{}/{}", self.name, id.as_ref())
        };
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!("  thrpt: {:>12}/s", human_rate(n as f64 / median.as_secs_f64()))
            }
            Throughput::Bytes(n) => {
                format!("  thrpt: {:>11}B/s", human_rate(n as f64 / median.as_secs_f64()))
            }
        });
        println!(
            "{full:<44} time: [min {} | med {} | mean {}]{}",
            human_time(min),
            human_time(median),
            human_time(mean),
            rate.unwrap_or_default(),
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let elements = match self.throughput {
                Some(Throughput::Elements(n) | Throughput::Bytes(n)) => n,
                None => 0,
            };
            let line = format!(
                "{{\"bench\":\"{full}\",\"samples\":{},\"min_s\":{:.6},\"median_s\":{:.6},\"mean_s\":{:.6},\"elements\":{elements}}}\n",
                s.len(),
                min.as_secs_f64(),
                median.as_secs_f64(),
                mean.as_secs_f64(),
            );
            if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                let _ = f.write_all(line.as_bytes());
            }
        }
    }

    /// Ends the group (separator line only; nothing buffered).
    pub fn finish(self) {}
}

fn human_time(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn human_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2} G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2} M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2} K", r / 1e3)
    } else {
        format!("{r:.1} ")
    }
}

/// Declares a benchmark group function calling each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 4, "1 warm-up + 3 samples");
    }

    #[test]
    fn iter_batched_threads_setup_through() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut total = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| total += x, BatchSize::SmallInput);
        });
        g.finish();
        assert_eq!(total, 63, "warm-up + 2 samples, each adding 21");
    }
}
