//! Offline stand-in for the `parking_lot` API surface this workspace
//! uses: `Mutex` and `RwLock` whose lock methods return guards directly
//! (no poisoning), wrapping the `std` primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex over [`std::sync::Mutex`].
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison (a panicked holder aborts the
    /// campaign anyway).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Poison-free reader-writer lock over [`std::sync::RwLock`].
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
