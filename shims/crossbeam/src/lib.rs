//! Offline stand-in for the `crossbeam` API surface this workspace uses:
//! [`channel::bounded`] — a blocking, multi-producer/multi-consumer
//! bounded FIFO. Built on `std` `Mutex`+`Condvar`; a mutex-guarded ring
//! is plenty for work units that each carry a full pipeline snapshot
//! (channel traffic is thousands/sec, not millions/sec).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! Bounded MPMC channel (subset of `crossbeam-channel`).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (consumers compete for items).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The channel is closed: all receivers dropped. Returns the value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The channel is empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates a bounded channel with room for `cap` in-flight items.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                buf: VecDeque::with_capacity(cap.max(1)),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`.
        ///
        /// # Errors
        ///
        /// Returns the value if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.buf.len() < st.cap {
                    st.buf.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives.
        ///
        /// # Errors
        ///
        /// Fails once the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Borrowed blocking iterator over received items.
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Owned blocking iterator over received items.
    #[derive(Debug)]
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_disconnect() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            drop(tx);
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receivers_gone() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = bounded::<usize>(4);
            let total: usize = std::thread::scope(|s| {
                let consumers: Vec<_> = (0..3)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || rx.iter().sum::<usize>())
                    })
                    .collect();
                drop(rx);
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
                drop(tx);
                consumers.into_iter().map(|c| c.join().unwrap()).sum()
            });
            assert_eq!(total, (0..100).sum());
        }
    }
}
