//! Offline placeholder keeping the workspace's `bytes` dependency
//! resolvable. No crate uses `bytes` yet; grow this into the needed API
//! subset (or vendor upstream) before depending on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
