//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Semantics: each `proptest!`-generated test runs its body against
//! `ProptestConfig::cases` independently sampled inputs from a
//! deterministic RNG (seed overridable via `PROPTEST_SEED`, case count
//! via `PROPTEST_CASES`). Failures panic with the case number and are
//! exactly reproducible — but there is **no shrinking**: the failing
//! input is reported as-is rather than minimized. That trade keeps the
//! shim a few hundred lines while preserving the property-test coverage
//! the suite relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

pub mod test_runner {
    //! Runner configuration (subset of `proptest::test_runner`).

    /// How many cases each property runs, and the base seed.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
            ProptestConfig { cases }
        }
    }
}

/// Base seed for a property's RNG (env `PROPTEST_SEED` or a fixed
/// default so CI runs are reproducible).
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EED_CAFE_F00D_0001)
}

/// RNG for one case of one property, derived from the base seed and the
/// case index so any failing case replays in isolation.
pub fn case_rng(case: u64) -> TestRng {
    TestRng::seed_from_u64(base_seed() ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

pub mod strategy {
    //! Value-generation strategies (subset of `proptest::strategy`).

    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.sample(rng)))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy { .. }")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted union of boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union").field("arms", &self.arms.len()).finish()
        }
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($S:ident/$idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support (subset of `proptest::arbitrary`).

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specifications accepted by [`vec()`](fn@self::vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    /// A `Vec` of `elem` values with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into().0 }
    }

    /// Strategy returned by [`vec()`](fn@self::vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers (subset of `proptest::sample`).

    use super::arbitrary::Arbitrary;
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs a non-empty list");
        Select { items }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }

    /// An index into a runtime-sized collection.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`, as upstream does.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.gen::<u64>())
        }
    }
}

pub mod prop {
    //! The `prop::` path alias used by `proptest::prelude`.

    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted or unweighted union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes
/// a `#[test]` that samples its inputs `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$attr:meta])*
         fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __strategies = ( $($strat,)+ );
                for __case in 0..__cfg.cases as u64 {
                    let mut __rng = $crate::case_rng(__case);
                    let ( $($pat,)+ ) = $crate::strategy::Strategy::sample(
                        &__strategies,
                        &mut __rng,
                    );
                    let __run = || -> () { $body };
                    if let Err(e) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(__run),
                    ) {
                        eprintln!(
                            "proptest case {__case}/{} failed (seed {:#x}; \
                             re-run with PROPTEST_SEED to reproduce)",
                            __cfg.cases,
                            $crate::base_seed(),
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}
