//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace
//! replaces the external `rand` with this shim (see `shims/README.md`).
//! It provides [`rngs::StdRng`], [`SeedableRng`], and the [`Rng`]
//! extension trait with `gen`, `gen_range`, and `gen_bool`.
//!
//! `StdRng` here is xoshiro256++ seeded by splitmix64 expansion — a
//! different stream than upstream's ChaCha12-based `StdRng`, but the
//! workspace only relies on seed-reproducibility and statistical
//! quality, never on the exact upstream stream (campaign seeds are
//! documented as implementation-defined; see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core uniform bit source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with splitmix64
    /// exactly like upstream `rand_core` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One splitmix64 step: advances `state` and returns the next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types drawable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types [`Rng::gen_range`] can draw uniformly (mirrors
/// `rand::distributions::uniform::SampleUniform` closely enough that
/// type inference flows the same way — the `Range<T>: SampleRange<T>`
/// impl below must stay generic so `gen_range(0..3)` unifies with its
/// use site, e.g. a slice index).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                lo + bounded_u64(rng, (hi - lo) as u64) as $t
            }
            #[inline]
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
            #[inline]
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
    #[inline]
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Uniform draw in `[0, n)` without modulo bias (Lemire rejection).
#[inline]
fn bounded_u64(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n.max(1) || n.is_power_of_two() {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniform over the type's whole domain.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic, seedable generator (xoshiro256++ under the hood;
    /// upstream uses ChaCha12 — see the crate docs for why the stream
    /// difference is acceptable here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is the one fixed point of xoshiro.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all cells hit: {seen:?}");
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }
}
