//! Offline stand-in for `serde`. The workspace currently only *derives*
//! `Serialize`/`Deserialize` as forward-looking markers on ISA and
//! simulator types; nothing serializes yet. The traits are therefore
//! empty and the derives (re-exported from the shim `serde_derive`)
//! expand to nothing. See `shims/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
