//! Offline stand-in for `serde_derive`: the workspace only ever *derives*
//! `Serialize`/`Deserialize` (no serializer is wired up yet), so the
//! derives expand to nothing. When a real serialization backend lands,
//! these must be replaced by a vendored upstream `serde_derive`.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
