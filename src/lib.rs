//! Facade crate: re-exports the ReStore reproduction workspace.

#![forbid(unsafe_code)]
pub use restore_arch as arch;
pub use restore_core as core;
pub use restore_inject as inject;
pub use restore_isa as isa;
pub use restore_perf as perf;
pub use restore_store as store;
pub use restore_uarch as uarch;
pub use restore_workloads as workloads;
