//! Symptom/interval tuning: sweep the checkpoint interval and the armed
//! detector set, and report the coverage/performance trade-off — the
//! design space of §3.3 and §5.2.
//!
//! ```text
//! cargo run --release --example symptom_tuning
//! ```

use restore_inject::{run_uarch_campaign, CfvMode, UarchCampaignConfig};
use restore_perf::{profile_all, PerfModel, Policy};
use restore_uarch::UarchConfig;
use restore_workloads::Scale;

fn main() {
    println!("running a shared fault-injection campaign ...");
    let cfg = UarchCampaignConfig {
        points_per_workload: 5,
        trials_per_point: 10,
        ..UarchCampaignConfig::default()
    };
    let trials = run_uarch_campaign(&cfg);
    let failures = trials.iter().filter(|t| t.is_failure()).count();
    println!(
        "{} trials, {} failures ({:.1}%)\n",
        trials.len(),
        failures,
        100.0 * failures as f64 / trials.len() as f64
    );

    println!("profiling workloads for the performance side ...");
    let profiles = profile_all(Scale::campaign(), &UarchConfig::default(), 100_000);
    let model = PerfModel::default();

    println!(
        "\n{:<10}{:>22}{:>22}{:>14}",
        "interval", "coverage (perfect cfv)", "coverage (JRS cfv)", "perf (imm)"
    );
    for interval in [25u64, 50, 100, 200, 500, 1000] {
        let cov = |mode| {
            let covered =
                trials.iter().filter(|t| t.classify(interval, mode, false).is_covered()).count();
            100.0 * covered as f64 / failures.max(1) as f64
        };
        let perf = model.mean_speedup(&profiles, interval, Policy::Immediate);
        println!(
            "{interval:<10}{:>21.1}%{:>21.1}%{:>14.3}",
            cov(CfvMode::Perfect),
            cov(CfvMode::HighConfidence),
            perf
        );
    }

    println!(
        "\nThe trade-off the paper frames in §3.3: longer intervals catch\n\
         longer error-to-symptom latencies (coverage ↑) but false positives\n\
         cost more re-execution (performance ↓). The JRS confidence gate\n\
         keeps rollbacks rare at the price of most cfv coverage (§5.2.1)."
    );
}
