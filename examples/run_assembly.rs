//! Assemble-and-run: feed a `.s` file (or the built-in demo) through the
//! text assembler and execute it on both simulators, reporting outputs,
//! exceptions, IPC and disassembly.
//!
//! ```text
//! cargo run --release --example run_assembly [path/to/file.s]
//! ```

use restore_arch::Cpu;
use restore_isa::assemble_text;
use restore_uarch::{Pipeline, Stop, UarchConfig};

const DEMO: &str = r"
; Compute the 20th Fibonacci number with a rolling pair.
        li   t0, 20        ; n
        li   t1, 0         ; fib(i)
        li   t2, 1         ; fib(i+1)
top:
        addq t1, t2, t3
        mov  t2, t1
        mov  t3, t2
        subq t0, #1, t0
        bgt  t0, top
        mov  t1, a0
        outq
        halt
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let source = match args.get(1) {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => DEMO.to_string(),
    };

    let program = match assemble_text(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("assembly error: {e}");
            std::process::exit(1);
        }
    };
    println!("assembled {} instructions:\n", program.len());
    print!("{}", program.disassemble());

    // Architectural run.
    let mut cpu = Cpu::new(&program);
    match cpu.run(10_000_000) {
        Ok(exit) => println!("\n[arch]  {exit:?} after {} instructions", cpu.retired()),
        Err(e) => println!("\n[arch]  exception: {e}"),
    }
    println!("[arch]  output: {:?}", cpu.output());

    // Microarchitectural run.
    let mut pipe = Pipeline::new(UarchConfig::default(), &program);
    for _ in 0..10_000_000u64 {
        if pipe.status() != Stop::Running {
            break;
        }
        pipe.cycle();
    }
    println!(
        "[uarch] {:?} after {} instructions in {} cycles (IPC {:.2})",
        pipe.status(),
        pipe.retired(),
        pipe.cycles(),
        pipe.retired() as f64 / pipe.cycles().max(1) as f64
    );
    println!("[uarch] output: {:?}", pipe.output());

    assert_eq!(cpu.output(), pipe.output(), "simulators disagree!");
    println!("\nsimulators agree.");
}
