//! Reliability projection: the §5.3 FIT-scaling analysis, answering the
//! architect's question "how big a core can I build before soft errors
//! break my MTBF budget, with and without ReStore?"
//!
//! ```text
//! cargo run --release --example reliability_projection
//! ```

use restore_core::fit::{figure8_sizes, FitModel, FitScaling, MTBF_GOAL_FIT};

fn main() {
    // The paper's measured failure fractions (Figure 8 uses the same).
    let scaling = FitScaling::paper();

    println!("raw soft-error rate: 0.001 FIT/bit (Hazucha & Svensson)");
    println!("reliability goal:    1000-year MTBF = {MTBF_GOAL_FIT:.0} FIT\n");

    println!(
        "{:<12}{:>12}{:>12}{:>12}{:>14}",
        "design bits", "baseline", "ReStore", "lhf", "lhf+ReStore"
    );
    for (bits, base, restore, lhf, both) in scaling.series(&figure8_sizes()) {
        let marker = |fit: f64| if fit > MTBF_GOAL_FIT { "!" } else { " " };
        println!(
            "{:<12.0}{:>11.1}{}{:>11.1}{}{:>11.1}{}{:>13.1}{}",
            bits,
            base,
            marker(base),
            restore,
            marker(restore),
            lhf,
            marker(lhf),
            both,
            marker(both),
        );
    }
    println!("(! = fails the 1000-year goal)\n");

    for (name, m) in [
        ("baseline", scaling.baseline),
        ("ReStore", scaling.restore),
        ("lhf", scaling.lhf),
        ("lhf+ReStore", scaling.lhf_restore),
    ] {
        println!(
            "{name:<12} supports up to {:>10.0} bits at the goal \
             (MTBF at 46k bits: {:>6.0} years)",
            m.max_bits_at_goal(),
            m.mtbf_years(46_000.0)
        );
    }

    println!(
        "\nheadline: lhf+ReStore gives {:.1}x the MTBF of an unprotected\n\
         pipeline — \"a MTBF comparable to a design 1/7th the size\" (§5.3).",
        scaling.mtbf_improvement()
    );

    // Sensitivity: how does the picture change if raw FIT/bit doubles
    // (a process generation of scaling)?
    println!("\nsensitivity: doubling the raw per-bit rate halves every MTBF:");
    let mut worse = FitModel::new(0.07);
    worse.fit_per_bit *= 2.0;
    println!(
        "  baseline at 46k bits: {:.0} years -> {:.0} years",
        FitModel::new(0.07).mtbf_years(46_000.0),
        worse.mtbf_years(46_000.0)
    );
}
