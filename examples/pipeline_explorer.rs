//! Pipeline explorer: run any workload on the bare out-of-order core and
//! print its microarchitectural character — IPC, branch behaviour,
//! cache/TLB misses, and the fault-injectable state inventory.
//!
//! ```text
//! cargo run --release --example pipeline_explorer [workload] [cycles]
//! ```

use restore_uarch::{Pipeline, Stop, UarchConfig};
use restore_workloads::{Scale, WorkloadId};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("mcfx");
    let cycles: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let Some(id) = WorkloadId::ALL.iter().copied().find(|w| w.name() == name) else {
        eprintln!(
            "unknown workload {name}; pick one of: {}",
            WorkloadId::ALL.map(WorkloadId::name).join(" ")
        );
        std::process::exit(1);
    };

    let program = id.build(Scale::campaign());
    println!("{} — {} instructions of text, entry {:#x}", id, program.len(), program.entry);

    let mut pipe = Pipeline::new(UarchConfig::default(), &program);
    let (mut mispredicts, mut hc_mispredicts, mut flushes) = (0u64, 0u64, 0u64);
    for _ in 0..cycles {
        if pipe.status() != Stop::Running {
            break;
        }
        let r = pipe.cycle();
        for m in &r.mispredicts {
            flushes += 1;
            if m.conditional {
                mispredicts += 1;
                if m.high_confidence {
                    hc_mispredicts += 1;
                }
            }
        }
    }

    let (ic, dc, it, dt) = pipe.miss_counters();
    println!("\nafter {} cycles ({:?}):", pipe.cycles(), pipe.status());
    println!("  retired               {:>10}", pipe.retired());
    println!("  IPC                   {:>10.2}", pipe.retired() as f64 / pipe.cycles() as f64);
    println!("  pipeline flushes      {:>10}", flushes);
    println!(
        "  cond mispredicts      {:>10}   ({:.2} per kinstr)",
        mispredicts,
        1000.0 * mispredicts as f64 / pipe.retired().max(1) as f64
    );
    println!("  high-confidence ones  {:>10}   (ReStore false-positive rate)", hc_mispredicts);
    println!("  i-cache / d-cache misses  {ic} / {dc}");
    println!("  i-TLB / d-TLB misses      {it} / {dt}");

    let catalog = pipe.catalog();
    println!(
        "\nfault-injectable state: {} bits ({} latch / {} RAM), lhf covers {:.1}%",
        catalog.total_bits,
        catalog.latch_bits(),
        catalog.ram_bits(),
        100.0 * catalog.lhf_coverage()
    );
    println!("{:<24}{:>8}  {:<6}{:>9}", "region", "bits", "kind", "control");
    for r in &catalog.regions {
        println!(
            "{:<24}{:>8}  {:<6}{:>8.0}%{}",
            r.name,
            r.len,
            format!("{:?}", r.kind),
            100.0 * r.control_bits as f64 / r.len.max(1) as f64,
            if r.ecc { "  [ECC in lhf]" } else { "" }
        );
    }
}
