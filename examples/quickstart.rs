//! Quickstart: run a workload under the ReStore architecture, inject a
//! soft error mid-flight, and watch symptom-based detection recover it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use restore_core::{RestoreConfig, RestoreController, RestoreOutcome};
use restore_uarch::{FaultState, Pipeline, UarchConfig};
use restore_workloads::{Scale, WorkloadId};

fn main() {
    let scale = Scale { size: 32, seed: 2026 };
    let workload = WorkloadId::Vortexx;
    let expected = workload.expected(scale);
    println!("workload: {workload} (hash-table object store), expected checksum {expected:#x}");

    // 1. Fault-free run under ReStore: transparent.
    let program = workload.build(scale);
    let pipe = Pipeline::new(UarchConfig::default(), &program);
    let mut restore = RestoreController::new(pipe, RestoreConfig::default());
    let outcome = restore.run(50_000_000);
    println!("\n[fault-free] outcome: {outcome:?}");
    println!(
        "[fault-free] output:  {:#x} (correct: {})",
        restore.output()[0],
        restore.output() == [expected]
    );
    let s = restore.stats();
    println!(
        "[fault-free] {} checkpoints, {} rollbacks ({} false positives), overhead {:.1}%",
        s.checkpoints,
        s.rollbacks,
        s.false_positives,
        100.0 * (s.total_retired - s.useful_retired) as f64 / s.useful_retired.max(1) as f64
    );

    // 2. Inject single-bit flips mid-run and tally outcomes.
    println!("\ninjecting one random state-bit flip per run (20 runs):");
    let mut rng = StdRng::seed_from_u64(7);
    let (mut clean, mut recovered, mut reported, mut sdc) = (0, 0, 0, 0);
    for run in 0..20 {
        let pipe = Pipeline::new(UarchConfig::default(), &program);
        let mut c = RestoreController::new(pipe, RestoreConfig::default());
        c.run(rng.gen_range(2_000..30_000)); // random injection time
        let bits = {
            let mut rec = restore_uarch::state::RangeRecorder::new();
            c.pipeline_mut().visit_state(&mut rec);
            rec.into_catalog().total_bits
        };
        let bit = rng.gen_range(0..bits);
        c.pipeline_mut().flip_bit(bit);
        match c.run(80_000_000) {
            RestoreOutcome::Halted if c.output() == [expected] => {
                if c.stats().detected_errors > 0 {
                    recovered += 1;
                    println!(
                        "  run {run:2}: bit {bit:6} -> DETECTED + RECOVERED \
                         ({} rollbacks, correct output)",
                        c.stats().rollbacks
                    );
                } else {
                    clean += 1;
                }
            }
            RestoreOutcome::Halted => {
                sdc += 1;
                println!("  run {run:2}: bit {bit:6} -> silent data corruption (coverage gap)");
            }
            other => {
                reported += 1;
                println!("  run {run:2}: bit {bit:6} -> reported failure: {other:?}");
            }
        }
    }
    println!(
        "\nsummary: {clean} masked, {recovered} detected+recovered, \
         {reported} reported failures, {sdc} silent corruptions"
    );
    println!(
        "(the paper's claim: symptom-based detection halves silent corruption at minimal cost)"
    );
}
